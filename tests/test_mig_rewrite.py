"""Unit tests for the MIG axiom implementations (Ω and Ψ rewrites)."""

import pytest

from repro.mig import (
    EquivalenceGuard,
    Mig,
    node_levels,
    signal_node,
    signal_not,
)
from repro.mig.rewrite import (
    apply_associativity,
    apply_complementary_associativity,
    apply_distributivity_lr,
    apply_distributivity_rl,
    apply_inverter_propagation,
    apply_relevance,
    complemented_fanin_count,
    effective_children,
    fanout_all_complemented,
    inverter_propagation_case,
    rebuild_with_replacement,
)
from repro.mig.views import level_stats


def build_distributivity_pattern():
    """n = M(M(x,y,u), M(x,y,v), z) — the Ω.D R→L redex."""
    mig = Mig("dist")
    x, y, u, v, z = (mig.add_pi(n) for n in "xyuvz")
    left = mig.make_maj(x, y, u)
    right = mig.make_maj(x, y, v)
    top = mig.make_maj(left, right, z)
    mig.add_po(top)
    return mig, signal_node(top)


class TestEffectiveChildren:
    def test_plain_edge(self, maj3_mig):
        (node,) = maj3_mig.reachable_nodes()
        signal = node << 1
        assert effective_children(maj3_mig, signal) == maj3_mig.children(node)

    def test_complemented_edge_flips(self, maj3_mig):
        (node,) = maj3_mig.reachable_nodes()
        flipped = effective_children(maj3_mig, (node << 1) | 1)
        assert flipped == tuple(
            signal_not(c) for c in maj3_mig.children(node)
        )

    def test_non_gate_returns_none(self, maj3_mig):
        pi = maj3_mig.pis[0]
        assert effective_children(maj3_mig, pi << 1) is None


class TestDistributivityRL:
    def test_reduces_node_count(self):
        mig, top = build_distributivity_pattern()
        guard = EquivalenceGuard(mig)
        before = mig.num_gates()
        assert apply_distributivity_rl(mig, top)
        guard.verify_or_raise()
        assert mig.num_gates() < before

    def test_respects_fanout_guard(self):
        mig, top = build_distributivity_pattern()
        # Give the left inner gate a second fanout: rewrite must refuse.
        x, y = mig.pis[0] << 1, mig.pis[1] << 1
        left = None
        for node in mig.reachable_nodes():
            if node != top and mig.fanout_size(node) == 1:
                left = node
                break
        assert left is not None
        extra = mig.make_and(left << 1, x)
        mig.add_po(extra)
        assert not apply_distributivity_rl(mig, top)

    def test_force_overrides_guard(self):
        mig, top = build_distributivity_pattern()
        x = mig.pis[0] << 1
        inner = [n for n in mig.reachable_nodes() if n != top][0]
        mig.add_po(mig.make_and(inner << 1, x))
        guard = EquivalenceGuard(mig)
        assert apply_distributivity_rl(mig, top, force=True)
        guard.verify_or_raise()

    def test_matches_through_complemented_pairs(self):
        mig = Mig()
        x, y, u, v, z = (mig.add_pi(n) for n in "xyuvz")
        left = mig.make_maj(x, y, u)
        right = mig.make_maj(
            signal_not(x), signal_not(y), signal_not(v)
        )
        top = mig.make_maj(signal_not(left), right, z)
        mig.add_po(top)
        guard = EquivalenceGuard(mig)
        changed = apply_distributivity_rl(mig, signal_node(top))
        guard.verify_or_raise()
        assert changed

    def test_identical_functions_collapse(self):
        mig = Mig()
        x, y, u, z = (mig.add_pi(n) for n in "xyuz")
        left = mig.make_maj(x, y, u)
        right = mig.make_maj(signal_not(x), signal_not(y), signal_not(u))
        top = mig.make_maj(left, signal_not(right), z)
        mig.add_po(top)
        guard = EquivalenceGuard(mig)
        assert apply_distributivity_rl(mig, signal_node(top))
        guard.verify_or_raise()
        # M(f, f, z) = f: the top must now be the left gate itself.
        assert signal_node(mig.pos[0]) == signal_node(left)

    def test_no_match_returns_false(self, maj3_mig):
        (node,) = maj3_mig.reachable_nodes()
        assert not apply_distributivity_rl(maj3_mig, node)


class TestDistributivityLR:
    def test_hoists_deep_child(self):
        mig = Mig()
        a, b, p, q, x, y = (mig.add_pi(n) for n in "abpqxy")
        deep = mig.make_maj(a, b, p)  # level 1
        deep2 = mig.make_maj(deep, a, q)  # level 2
        inner = mig.make_maj(deep2, x, y)  # level 3
        top = mig.make_maj(inner, a, b)  # level 4
        mig.add_po(top)
        guard = EquivalenceGuard(mig)
        levels = node_levels(mig)
        assert apply_distributivity_lr(mig, signal_node(top), levels)
        guard.verify_or_raise()
        assert level_stats(mig).depth < 4

    def test_no_gain_no_change(self, maj3_mig):
        (node,) = maj3_mig.reachable_nodes()
        levels = node_levels(maj3_mig)
        assert not apply_distributivity_lr(maj3_mig, node, levels)


class TestAssociativity:
    def test_swap_reduces_level(self):
        mig = Mig()
        u, y, p, q, r = (mig.add_pi(n) for n in "uypqr")
        deep = mig.make_maj(p, q, r)  # level 1
        inner = mig.make_maj(y, u, deep)  # level 2
        top = mig.make_maj(deep, u, inner)  # M(z,u,M(y,u,x)) backwards
        mig.add_po(top)
        guard = EquivalenceGuard(mig)
        levels = node_levels(mig)
        changed = apply_associativity(mig, signal_node(top), levels)
        guard.verify_or_raise()
        assert changed
        assert level_stats(mig).depth <= 2

    def test_neutral_swap_needs_flag(self):
        mig = Mig()
        x, u, y, z = (mig.add_pi(n) for n in "xuyz")
        inner = mig.make_maj(y, u, z)
        top = mig.make_maj(x, u, inner)
        mig.add_po(top)
        levels = node_levels(mig)
        assert not apply_associativity(mig, signal_node(top), levels)
        guard = EquivalenceGuard(mig)
        changed = apply_associativity(
            mig, signal_node(mig.pos[0]), levels, allow_neutral=True
        )
        guard.verify_or_raise()
        assert changed


class TestComplementaryAssociativity:
    def test_removes_complement(self):
        mig = Mig()
        x, u, y, z = (mig.add_pi(n) for n in "xuyz")
        inner = mig.make_maj(y, signal_not(u), z)
        top = mig.make_maj(x, u, inner)
        mig.add_po(top)
        guard = EquivalenceGuard(mig)
        before = level_stats(mig)
        changed = apply_complementary_associativity(
            mig, signal_node(top), node_levels(mig)
        )
        guard.verify_or_raise()
        assert changed
        after = level_stats(mig)
        assert sum(after.complements_per_level) < sum(
            before.complements_per_level
        )

    def test_no_pattern_no_change(self, maj3_mig):
        (node,) = maj3_mig.reachable_nodes()
        assert not apply_complementary_associativity(
            maj3_mig, node, node_levels(maj3_mig)
        )


class TestInverterPropagation:
    def build(self, complemented_count, po_complemented=True):
        mig = Mig()
        a, b, c = (mig.add_pi(n) for n in "abc")
        children = [a, b, c]
        for i in range(complemented_count):
            children[i] = signal_not(children[i])
        f = mig.make_maj(*children)
        mig.add_po(signal_not(f) if po_complemented else f)
        return mig, signal_node(f)

    def test_case1_classified(self):
        mig, node = self.build(3)
        assert complemented_fanin_count(mig, node) == 3
        assert inverter_propagation_case(mig, node) == 1

    def test_case2_classified(self):
        mig, node = self.build(2, po_complemented=True)
        assert fanout_all_complemented(mig, node)
        assert inverter_propagation_case(mig, node) == 2

    def test_case3_classified(self):
        mig, node = self.build(2, po_complemented=False)
        assert inverter_propagation_case(mig, node) == 3

    def test_below_threshold_not_classified(self):
        mig, node = self.build(1)
        assert inverter_propagation_case(mig, node) is None

    def test_flip_preserves_function(self):
        for count in (2, 3):
            for po_comp in (False, True):
                mig, node = self.build(count, po_comp)
                guard = EquivalenceGuard(mig)
                assert apply_inverter_propagation(mig, node)
                guard.verify_or_raise()

    def test_case1_clears_level(self):
        mig, node = self.build(3, po_complemented=False)
        assert apply_inverter_propagation(mig, node)
        stats = level_stats(mig)
        assert stats.complements_per_level[1] == 0
        assert stats.po_complements == 1  # moved upstairs

    def test_case2_cancels_everywhere(self):
        mig, node = self.build(2, po_complemented=True)
        assert apply_inverter_propagation(mig, node)
        stats = level_stats(mig)
        assert stats.complements_per_level[1] == 1
        assert stats.po_complements == 0  # cancelled with the PO edge

    def test_figure4(self):
        """Paper Fig. 4: Ω.I_{R→L}(2) releases a level from complements."""
        mig = Mig("fig4")
        x, u, y, z, v, w = (mig.add_pi(n) for n in "xuyzvw")
        left = mig.make_maj(u, y, z)
        right = mig.make_maj(z, v, w)
        top = mig.make_maj(
            x, signal_not(left), signal_not(right)
        )
        mig.add_po(top)
        before = level_stats(mig)
        assert before.complements_per_level[2] == 2
        assert before.levels_with_complements == 1
        guard = EquivalenceGuard(mig)
        node = signal_node(top)
        assert inverter_propagation_case(mig, node) == 3
        assert apply_inverter_propagation(mig, node)
        guard.verify_or_raise()
        after = level_stats(mig)
        # The gate level is free of complements; one complement moved to
        # the output edge.
        assert after.complements_per_level[2] == 1  # x became !x
        assert after.po_complements == 1


class TestRelevance:
    def test_rebuild_with_replacement(self):
        mig = Mig()
        x, y, z = (mig.add_pi(n) for n in "xyz")
        cone = mig.make_and(x, z)
        rebuilt = rebuild_with_replacement(mig, cone, x, signal_not(y))
        assert rebuilt is not None and rebuilt != cone
        mig.add_po(rebuilt)
        from repro.truth import TruthTable

        (table,) = mig.truth_tables()
        vx, vy, vz = (TruthTable.variable(3, i) for i in range(3))
        assert table == (~vy & vz)

    def test_rebuild_untouched_cone(self):
        mig = Mig()
        x, y, z = (mig.add_pi(n) for n in "xyz")
        cone = mig.make_and(y, z)
        assert rebuild_with_replacement(mig, cone, x, signal_not(y)) == cone

    def test_relevance_reduces_level(self):
        mig = Mig()
        x, y, p, q = (mig.add_pi(n) for n in "xypq")
        # z-cone: M(M(x, p, q), x, y) — substituting x/!y collapses it.
        deep = mig.make_maj(x, p, q)
        z = mig.make_maj(deep, x, signal_not(y))
        top = mig.make_maj(x, y, z)
        mig.add_po(top)
        guard = EquivalenceGuard(mig)
        changed = apply_relevance(mig, signal_node(top), node_levels(mig))
        guard.verify_or_raise()
        assert changed
        assert level_stats(mig).depth < 3

    def test_relevance_no_shared_variable(self, maj3_mig):
        (node,) = maj3_mig.reachable_nodes()
        assert not apply_relevance(maj3_mig, node, node_levels(maj3_mig))
