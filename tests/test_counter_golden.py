"""Counter-identity golden test over the full Table II corpus.

The deterministic counter families (optimizer moves, CostView event
replay, strash probes, transaction undo, batch kernels, slab
occupancy) are pure functions of the algorithm and its inputs — no
wall-clock, no machine dependence.  This test replays the whole-set
Table II flow under the pinned configuration recorded in
``tests/data/table2_counters_golden.json`` and requires every counter
to match *exactly*.

Any drift fails tier-1.  If the change is intentional, refresh the
fixture with one command and review its diff like source:

    PYTHONPATH=src python benchmarks/refresh_counter_golden.py
"""

from __future__ import annotations

import json
import os

import pytest

FIXTURE = os.path.join(
    os.path.dirname(__file__), "data", "table2_counters_golden.json"
)


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def replayed_profile(golden):
    from repro.flows.bench import bench_table2
    from repro.mig import (
        batch_evaluation,
        graph_engine,
        transaction_engine,
    )

    with graph_engine(golden["graph_engine"]), transaction_engine(
        True
    ), batch_evaluation(True):
        entry = bench_table2(
            None, effort=golden["effort"], jobs=golden["jobs"]
        )
    return entry


def test_corpus_size_matches_fixture(golden, replayed_profile):
    assert replayed_profile["benchmarks"] == golden["benchmarks"]


def test_counters_identical(golden, replayed_profile):
    profile = replayed_profile["profile"]
    drifted = {}
    for key, expected in sorted(golden["counters"].items()):
        actual = profile.get(key, "<missing>")
        if actual != expected:
            drifted[key] = (expected, actual)
    assert not drifted, (
        "deterministic counter drift vs "
        "tests/data/table2_counters_golden.json "
        f"(expected, actual): {drifted} — if intentional, refresh via "
        "PYTHONPATH=src python benchmarks/refresh_counter_golden.py"
    )


def test_fixture_covers_every_counter_family(golden):
    """The fixture must pin at least one counter from each family the
    ledger gate watches — an empty or truncated fixture would make
    this test vacuous."""
    from repro.telemetry import DETERMINISTIC_COUNTER_KEYS

    missing = [
        key
        for key in DETERMINISTIC_COUNTER_KEYS
        if key not in golden["counters"]
    ]
    assert not missing, f"fixture missing counters: {missing}"
    # The Table II corpus sits below the batch cutover, so the batch
    # counters legitimately pin at 0 here; the REPRO_BATCH tripwire
    # lives on the scale tier (obs gate --what scale).
    assert golden["counters"]["moves_tried"] > 0
    assert golden["counters"]["events_replayed"] > 0
    assert golden["counters"]["tx_undo_replayed"] > 0
