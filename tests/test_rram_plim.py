"""Tests for the PLiM-style serial RM3 backend (paper ref. [15])."""

import pytest

from repro.mig import (
    CONST0,
    CONST1,
    Mig,
    Realization,
    mig_from_truth_tables,
    signal_not,
)
from repro.rram import compile_mig, compile_plim, run_program
from repro.truth import count_ones_function, nine_sym_function, parity_function


def check_against_mig(mig, report):
    num_inputs = mig.num_pis
    for assignment in range(1 << num_inputs):
        vec = [bool((assignment >> i) & 1) for i in range(num_inputs)]
        words = [1 if bit else 0 for bit in vec]
        expected = [bool(w & 1) for w in mig.simulate_words(words, 1)]
        assert run_program(report.program, vec) == expected, assignment


class TestCorrectness:
    def test_single_majority(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_po(mig.make_maj(a, b, c))
        check_against_mig(mig, compile_plim(mig))

    def test_complemented_children_all_cases(self):
        for mask in range(8):
            mig = Mig()
            pis = [mig.add_pi() for _ in range(3)]
            children = [
                signal_not(s) if (mask >> i) & 1 else s
                for i, s in enumerate(pis)
            ]
            mig.add_po(mig.make_maj(*children))
            check_against_mig(mig, compile_plim(mig))

    def test_and_or_gates(self):
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        mig.add_po(mig.make_and(a, b))
        mig.add_po(mig.make_or(a, b))
        check_against_mig(mig, compile_plim(mig))

    def test_complemented_and_constant_pos(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        f = mig.make_maj(a, b, c)
        mig.add_po(signal_not(f))
        mig.add_po(CONST1)
        mig.add_po(CONST0)
        mig.add_po(a)
        check_against_mig(mig, compile_plim(mig))

    def test_multi_level_circuit(self):
        mig = mig_from_truth_tables(count_ones_function(5, 3), "rd53")
        check_against_mig(mig, compile_plim(mig))

    def test_symmetric_function(self):
        mig = mig_from_truth_tables(nine_sym_function(), "9sym")
        check_against_mig(mig, compile_plim(mig))


class TestInstructionAccounting:
    def test_instruction_bounds(self):
        mig = mig_from_truth_tables(parity_function(6), "parity6")
        report = compile_plim(mig)
        gates = report.gates
        # 2..5 instructions per gate (a constant child makes the preload
        # a single literal write) + loads + constants + PO inversions.
        lower = 2 * gates
        upper = 5 * gates + mig.num_pis + 2 + 2 * mig.num_pos
        assert lower <= report.instructions <= upper

    def test_one_op_per_step(self):
        mig = mig_from_truth_tables(parity_function(4), "parity4")
        report = compile_plim(mig)
        assert all(len(step.ops) == 1 for step in report.program.steps)

    def test_serial_vs_level_parallel_contrast(self):
        """The architectural point: PLiM instructions scale with node
        count, the paper's level-parallel MAJ schedule with depth."""
        mig = mig_from_truth_tables(count_ones_function(8, 4), "rd84")
        plim = compile_plim(mig)
        parallel = compile_mig(mig, Realization.MAJ)
        assert plim.instructions > 2 * parallel.measured_steps

    def test_device_reuse(self):
        mig = mig_from_truth_tables(count_ones_function(7, 3), "rd73")
        report = compile_plim(mig)
        assert report.program.num_devices < mig.num_pis + 2 + 2 * report.gates
