"""Ledger baseline math and observatory gate/report logic.

Property-based coverage (Hypothesis) for the statistics the wall tier
trusts — median, MAD, noise-band monotonicity — plus example-based
coverage of baseline-key selection ("latest wins"), deterministic
counter-drift classification, byte-identical dedupe, schema-version
validation, gate verdicts over synthetic ledgers, and the report
renderers.
"""

from __future__ import annotations

import json
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    ACCEPTED_BENCH_SCHEMA_VERSIONS,
    BENCH_SCHEMA_VERSION,
    BaselineKey,
    Ledger,
    LedgerError,
    counter_drift,
    dedupe_entries,
    load_ledger,
    noise_band,
    validate_bench_ledger,
)
from repro.telemetry.ledger import MAD_K, MAD_SIGMA, mad, median
from repro.telemetry.observatory import (
    build_report,
    derive_scale_budget,
    render_report,
    render_report_html,
    scale_cell_seconds,
    sparkline,
)

finite_seconds = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# Robust statistics (property-based)
# ----------------------------------------------------------------------


class TestRobustStats:
    @given(st.lists(finite_seconds, min_size=1, max_size=50))
    def test_median_matches_statistics_module(self, values):
        assert median(values) == pytest.approx(
            statistics.median(values), abs=1e-9
        )

    @given(st.lists(finite_seconds, min_size=1, max_size=50))
    def test_median_bounded_by_extremes(self, values):
        assert min(values) <= median(values) <= max(values)

    @given(st.lists(finite_seconds, min_size=1, max_size=50))
    def test_mad_nonnegative(self, values):
        assert mad(values) >= 0.0

    @given(
        st.lists(finite_seconds, min_size=1, max_size=50),
        finite_seconds,
    )
    def test_translation_invariance(self, values, shift):
        """median commutes with translation; MAD is invariant."""
        shifted = [value + shift for value in values]
        assert median(shifted) == pytest.approx(
            median(values) + shift, rel=1e-9, abs=1e-6
        )
        assert mad(shifted) == pytest.approx(mad(values), rel=1e-9, abs=1e-6)

    @given(finite_seconds, st.integers(min_value=1, max_value=20))
    def test_constant_series_has_zero_mad(self, value, count):
        band = noise_band([value] * count)
        assert band is not None
        assert band.mad == 0.0
        assert band.median == pytest.approx(value)

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])
        with pytest.raises(ValueError):
            mad([])


class TestNoiseBand:
    @given(st.lists(finite_seconds, min_size=1, max_size=50))
    def test_upper_at_least_median(self, values):
        band = noise_band(values)
        assert band.upper() >= band.median

    @given(
        st.lists(
            st.floats(
                min_value=0.001,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_slack_floor_dominates_sparse_history(self, values):
        """With slack 2.0 the limit is always >= 3x the median, matching
        the perf_guard --max-ratio=3 budget it replaces."""
        band = noise_band(values)
        assert band.upper(2.0) >= 3.0 * band.median or band.median == 0

    def test_mad_term_engages_on_noisy_history(self):
        values = [10.0, 11.0, 100.0, 9.0, 95.0, 12.0, 90.0, 10.5]
        band = noise_band(values, window=8)
        assert band.upper(0.0) == pytest.approx(
            band.median + MAD_K * MAD_SIGMA * band.mad
        )
        assert band.classify(band.upper() + 1.0) == "slow"
        assert band.classify(band.median) == "ok"

    def test_window_keeps_only_the_tail(self):
        band = noise_band([1000.0] * 10 + [1.0, 2.0, 3.0], window=3)
        assert band.count == 3
        assert band.median == 2.0

    def test_empty_series_is_none(self):
        assert noise_band([]) is None


# ----------------------------------------------------------------------
# Baseline selection
# ----------------------------------------------------------------------


def _ledger(entries, path="synthetic.json"):
    deduped, dropped = dedupe_entries(entries)
    return Ledger(
        path=path,
        data={"entries": entries},
        entries=deduped,
        duplicates_dropped=dropped,
    )


class TestBaselineSelection:
    entries = [
        {"kind": "table2", "graph_engine": "object", "effort": 10,
         "seconds": 50.0, "profile": {"moves_tried": 1}},
        {"kind": "table2", "graph_engine": "slab", "effort": 10,
         "seconds": 60.0, "profile": {"moves_tried": 2}},
        {"kind": "table2", "graph_engine": "slab", "effort": 10,
         "seconds": 61.0, "profile": {"moves_tried": 3}},
        {"kind": "scale", "graph_engine": "slab", "effort": 10,
         "seconds": 70.0},
    ]

    def test_latest_matching_entry_wins(self):
        ledger = _ledger(self.entries)
        key = BaselineKey("table2", graph_engine="slab", effort=10)
        assert ledger.baseline(key)["profile"]["moves_tried"] == 3

    def test_kind_always_filters(self):
        ledger = _ledger(self.entries)
        assert len(ledger.query(BaselineKey("table2"))) == 3
        assert len(ledger.query(BaselineKey("scale"))) == 1
        assert ledger.baseline(BaselineKey("nope")) is None

    def test_any_fields_do_not_filter(self):
        ledger = _ledger(self.entries)
        assert ledger.baseline(BaselineKey("table2"))["seconds"] == 61.0

    def test_concrete_none_is_a_real_filter(self):
        ledger = _ledger(
            [
                {"kind": "fuzz-smoke", "effort": None, "seconds": 1.0},
                {"kind": "fuzz-smoke", "effort": 5, "seconds": 2.0},
            ]
        )
        assert (
            ledger.baseline(BaselineKey("fuzz-smoke", effort=None))["seconds"]
            == 1.0
        )

    def test_seconds_series_skips_non_numeric(self):
        ledger = _ledger(
            [
                {"kind": "k", "seconds": 1.0},
                {"kind": "k", "seconds": "broken"},
                {"kind": "k", "seconds": True},
                {"kind": "k", "seconds": 3.0},
            ]
        )
        assert ledger.seconds_series(BaselineKey("k")) == [1.0, 3.0]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["slab", "object"]),
                st.integers(min_value=1, max_value=3),
                finite_seconds,
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_baseline_is_last_match_property(self, rows):
        entries = [
            {"kind": "bench", "graph_engine": engine, "effort": effort,
             "seconds": seconds, "index": index}
            for index, (engine, effort, seconds) in enumerate(rows)
        ]
        ledger = _ledger(entries)
        for engine in ("slab", "object"):
            key = BaselineKey("bench", graph_engine=engine)
            expected = [e for e in ledger.entries
                        if e["graph_engine"] == engine]
            baseline = ledger.baseline(key)
            if expected:
                assert baseline is expected[-1]
            else:
                assert baseline is None


# ----------------------------------------------------------------------
# Counter drift
# ----------------------------------------------------------------------


class TestCounterDrift:
    def test_identical_profiles_have_no_drift(self):
        profile = {"moves_tried": 100, "strash_hits": 5, "unwatched": 9}
        assert counter_drift(profile, dict(profile)) == []

    def test_any_change_is_drift(self):
        drifts = counter_drift(
            {"moves_tried": 100, "batch_score_calls": 1},
            {"moves_tried": 100, "batch_score_calls": 0},
        )
        assert [d.name for d in drifts] == ["batch_score_calls"]
        assert drifts[0].baseline == 1 and drifts[0].current == 0
        assert "batch_score_calls" in drifts[0].describe()

    def test_missing_current_key_is_drift(self):
        drifts = counter_drift({"strash_hits": 7}, {})
        assert [(d.name, d.current) for d in drifts] == [
            ("strash_hits", "<missing>")
        ]

    def test_keys_missing_from_baseline_are_ignored(self):
        assert counter_drift({}, {"moves_tried": 5}) == []

    def test_unwatched_keys_are_ignored(self):
        assert (
            counter_drift({"wall_seconds": 1.0}, {"wall_seconds": 9.0}) == []
        )

    @given(
        st.dictionaries(
            st.sampled_from(
                ["moves_tried", "events_replayed", "strash_hits",
                 "batch_score_calls"]
            ),
            st.integers(min_value=0, max_value=10**9),
            max_size=4,
        ),
        st.sampled_from(
            ["moves_tried", "events_replayed", "strash_hits",
             "batch_score_calls"]
        ),
        st.integers(min_value=1, max_value=100),
    )
    def test_single_perturbation_is_always_caught(
        self, profile, key, delta
    ):
        if key not in profile:
            profile = {**profile, key: 0}
        drifted = {**profile, key: profile[key] + delta}
        names = [d.name for d in counter_drift(profile, drifted)]
        assert names == [key]


# ----------------------------------------------------------------------
# Dedupe + schema versions
# ----------------------------------------------------------------------


class TestDedupeAndSchema:
    def test_byte_identical_entries_collapse(self):
        entry = {"kind": "table2", "seconds": 1.0, "effort": 10,
                 "graph_engine": "slab"}
        kept, dropped = dedupe_entries([entry, dict(entry), dict(entry)])
        assert len(kept) == 1 and dropped == 2

    def test_key_order_does_not_defeat_dedupe(self):
        kept, dropped = dedupe_entries(
            [{"a": 1, "b": 2}, {"b": 2, "a": 1}]
        )
        assert len(kept) == 1 and dropped == 1

    def test_distinct_entries_survive_in_order(self):
        entries = [{"kind": "k", "seconds": float(i)} for i in range(5)]
        kept, dropped = dedupe_entries(entries)
        assert kept == entries and dropped == 0

    def test_load_ledger_collapses_duplicates(self, tmp_path):
        entry = {"kind": "table2", "seconds": 2.0, "effort": 10,
                 "graph_engine": "slab"}
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps({"entries": [entry, dict(entry)]}))
        ledger = load_ledger(str(path))
        assert len(ledger.entries) == 1
        assert ledger.duplicates_dropped == 1

    @pytest.mark.parametrize(
        "content,message",
        [
            (None, "no such ledger file"),
            ("", "empty ledger file"),
            ("{not json", "not valid JSON"),
            ("[1, 2]", "not a bench ledger"),
            ('{"entries": 5}', "not a bench ledger"),
        ],
    )
    def test_load_ledger_rejects_unusable_files(
        self, tmp_path, content, message
    ):
        path = tmp_path / "ledger.json"
        if content is not None:
            path.write_text(content)
        with pytest.raises(LedgerError, match=message):
            load_ledger(str(path))

    def test_both_schema_versions_validate(self):
        base = {"kind": "k", "seconds": 1.0, "effort": None,
                "graph_engine": "slab"}
        versioned = {**base, "schema_version": BENCH_SCHEMA_VERSION}
        data = {"entries": [base, versioned]}
        assert validate_bench_ledger(data) == []

    def test_unknown_schema_version_rejected(self):
        entry = {"kind": "k", "seconds": 1.0, "effort": None,
                 "graph_engine": "slab", "schema_version": 99}
        errors = validate_bench_ledger({"entries": [entry]})
        assert any("schema_version" in error for error in errors)
        assert 99 not in ACCEPTED_BENCH_SCHEMA_VERSIONS

    def test_new_entries_carry_current_version(self):
        from repro.flows.bench import _entry_common

        assert _entry_common(10)["schema_version"] == BENCH_SCHEMA_VERSION


# ----------------------------------------------------------------------
# Observatory report + budgets
# ----------------------------------------------------------------------


SCALE_CELL = {
    "gates": 1000,
    "build_seconds": 1.0,
    "imp": {"optimize_seconds": 2.0, "rrams": 10, "steps": 20,
            "counters": {"batch_score_calls": 1}},
    "maj": {"optimize_seconds": 3.0, "rrams": 11, "steps": 21,
            "counters": {"batch_score_calls": 1}},
}


class TestReport:
    def test_scale_cell_seconds_sums_phases(self):
        assert scale_cell_seconds(SCALE_CELL) == pytest.approx(6.0)

    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        spark = sparkline([1.0, 2.0, 3.0, 8.0])
        assert len(spark) == 4
        assert spark[0] == "▁" and spark[-1] == "█"

    @given(st.lists(finite_seconds, min_size=1, max_size=30))
    def test_sparkline_length_always_matches(self, values):
        assert len(sparkline(values)) == len(values)

    def _report(self):
        entries = [
            {"kind": "table2", "graph_engine": "slab", "effort": 10,
             "seconds": 60.0 + i,
             "profile": {"nodes_allocated": 100, "slab_capacity": 200,
                         "compactions": 3}}
            for i in range(4)
        ] + [
            {"kind": "scale", "graph_engine": "slab", "effort": 10,
             "seconds": 10.0, "benchmarks": {"rca1536": SCALE_CELL}},
        ]
        return build_report(_ledger(entries))

    def test_report_groups_series_and_gauges(self):
        report = self._report()
        keys = [(row.kind, row.graph_engine, row.effort)
                for row in report.series]
        assert ("table2", "slab", 10) in keys
        table2 = next(r for r in report.series if r.kind == "table2")
        assert len(table2.seconds) == 4
        # Band excludes the latest point.
        assert table2.band.count == 3
        assert report.occupancy["occupancy"] == pytest.approx(0.5)
        assert report.scale_cells["rca1536"]["seconds"] == pytest.approx(6.0)

    def test_renderers_cover_every_section(self):
        report = self._report()
        text = render_report(report)
        assert "table2/slab/effort=10" in text
        assert "slab occupancy" in text
        assert "rca1536" in text
        html = render_report_html(report)
        assert html.startswith("<!DOCTYPE html>")
        assert "rca1536" in html and "nodes_allocated" in html

    def test_derive_scale_budget_uses_history(self):
        entries = [
            {"kind": "scale", "seconds": 1.0,
             "benchmarks": {"rca1536": SCALE_CELL}},
            {"kind": "perf-guard-scale", "benchmark": "rca1536",
             "seconds": 5.5, "scale_seconds": 5.5},
        ]
        budget = derive_scale_budget(_ledger(entries), "rca1536", floor=0.0)
        band = noise_band([6.0, 5.5])
        assert budget == pytest.approx(band.upper(2.0))

    def test_derive_scale_budget_floor_protects_fast_flows(self):
        entries = [
            {"kind": "scale", "seconds": 1.0,
             "benchmarks": {"rca1536": SCALE_CELL}},
        ]
        assert derive_scale_budget(_ledger(entries), "rca1536") == 60.0

    def test_derive_scale_budget_fallback(self):
        assert derive_scale_budget(
            _ledger([]), "rca1536", fallback=123.0
        ) == 123.0


# ----------------------------------------------------------------------
# Gate verdict plumbing (synthetic, no real flows)
# ----------------------------------------------------------------------


class TestGateFindings:
    def test_wall_finding_inside_and_outside_band(self):
        from repro.telemetry.observatory import _wall_finding

        band = noise_band([10.0, 10.5, 11.0])
        ok = _wall_finding("x", 11.0, band, slack=2.0, strict=False)
        assert ok.ok
        slow = _wall_finding(
            "x", band.upper(2.0) + 1.0, band, slack=2.0, strict=False
        )
        assert not slow.ok and "limit" in slow.message

    def test_missing_band_warns_unless_strict(self):
        from repro.telemetry.observatory import _wall_finding

        assert _wall_finding("x", 1.0, None, slack=2.0, strict=False).ok
        assert not _wall_finding("x", 1.0, None, slack=2.0, strict=True).ok

    def test_gate_outcome_verdict_and_render(self):
        from repro.telemetry.observatory import (
            Finding,
            GateOutcome,
            gate_entry,
            render_gate,
        )

        outcome = GateOutcome(what="scale")
        outcome.findings.append(Finding("counter", "a", True, "fine"))
        outcome.findings.append(
            Finding("counter", "b", False,
                    "batch_score_calls: baseline 1 -> 0")
        )
        assert not outcome.passed
        assert len(outcome.failures) == 1
        rendered = render_gate([outcome])
        assert "drifting counters:" in rendered
        assert "batch_score_calls" in rendered
        assert rendered.endswith("obs gate FAIL")
        entry = gate_entry([outcome], seconds=1.0, effort=10)
        assert entry["kind"] == "obs-gate"
        assert entry["passed"] is False
        assert entry["gates"]["scale"]["failures"]
