"""The paper's step model, checked as a property on real circuits.

Table I gives S = K_S·D + L (K_S = 10 for IMP, 3 for MAJ).  For every
Table II benchmark and both realizations, three independent answers
must coincide: the analytic formula from ``rram_costs``, the
incremental :class:`CostView`, and the *measured* step count of the
compiled micro-program — plus a hypothesis sweep over generated MIGs
so agreement does not hinge on the benchmark corpus.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks import large_names, load_netlist
from repro.fuzz import case_netlist
from repro.mig import CostView, Realization, mig_from_netlist, rram_costs
from repro.rram import compile_mig

TABLE2 = large_names()
REALIZATIONS = (Realization.IMP, Realization.MAJ)


@pytest.mark.parametrize("name", TABLE2)
@pytest.mark.parametrize("realization", REALIZATIONS, ids=lambda r: r.value)
def test_steps_model_on_table2(name, realization):
    mig = mig_from_netlist(load_netlist(name))
    analytic = rram_costs(mig, realization)

    # The closed form itself.
    assert analytic.steps == (
        realization.steps_per_level * analytic.depth
        + analytic.levels_with_complements
    )

    # Incremental view agrees with the from-scratch computation.
    assert CostView(mig).costs(realization) == analytic

    # The compiler's measured schedule length matches the model.
    report = compile_mig(mig, realization)
    assert report.analytic == analytic
    assert report.steps_match_model, (
        f"{name}/{realization.value}: measured {report.measured_steps} "
        f"vs model S={analytic.steps}"
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    realization=st.sampled_from(REALIZATIONS),
)
def test_steps_model_on_generated_circuits(seed, realization):
    netlist = case_netlist("mig", seed, small=True)
    mig = mig_from_netlist(netlist)
    analytic = rram_costs(mig, realization)
    assert analytic.steps == (
        realization.steps_per_level * analytic.depth
        + analytic.levels_with_complements
    )
    assert CostView(mig).costs(realization) == analytic
    report = compile_mig(mig, realization)
    assert report.steps_match_model
