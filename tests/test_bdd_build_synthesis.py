"""Tests for netlist→BDD building and the BDD-based RRAM baseline."""

import pytest

from repro.bdd import (
    BddOverflowError,
    bdd_rram_costs,
    build_bdd_from_netlist,
    build_best_order,
    compile_bdd,
    dfs_variable_order,
)
from repro.network import GateType, Netlist
from repro.rram import run_program
from repro.truth import parity_function

from conftest import reference_full_adder_tables


class TestBuild:
    def test_full_adder(self, full_adder_netlist):
        manager, roots = build_bdd_from_netlist(full_adder_netlist)
        tables = reference_full_adder_tables()
        order = dfs_variable_order(full_adder_netlist)
        input_pos = {name: i for i, name in enumerate(full_adder_netlist.inputs)}
        for assignment in range(8):
            bits = [bool((assignment >> i) & 1) for i in range(3)]
            vec = [bits[input_pos[name]] for name in order]
            assert manager.evaluate(roots[0], vec) == tables[0].value_at(assignment)
            assert manager.evaluate(roots[1], vec) == tables[1].value_at(assignment)

    def test_every_gate_type_lowers(self):
        n = Netlist("all")
        for name in "abc":
            n.add_input(name)
        n.add_gate("g0", GateType.AND, ["a", "b", "c"])
        n.add_gate("g1", GateType.NAND, ["a", "b"])
        n.add_gate("g2", GateType.OR, ["a", "b"])
        n.add_gate("g3", GateType.NOR, ["a", "b"])
        n.add_gate("g4", GateType.XOR, ["a", "b", "c"])
        n.add_gate("g5", GateType.XNOR, ["a", "b"])
        n.add_gate("g6", GateType.NOT, ["a"])
        n.add_gate("g7", GateType.BUF, ["a"])
        n.add_gate("g8", GateType.MAJ, ["a", "b", "c"])
        n.add_gate("g9", GateType.MUX, ["a", "b", "c"])
        n.add_gate("g10", GateType.CONST0, [])
        n.add_gate("g11", GateType.CONST1, [])
        for gate in list(n.gates()):
            n.set_output(gate.name)
        manager, roots = build_bdd_from_netlist(n, variable_order=n.inputs)
        tables = n.truth_tables()
        for root, table in zip(roots, tables):
            for assignment in range(8):
                vec = [bool((assignment >> i) & 1) for i in range(3)]
                assert manager.evaluate(root, vec) == table.value_at(assignment)

    def test_order_must_be_permutation(self, full_adder_netlist):
        with pytest.raises(ValueError):
            build_bdd_from_netlist(full_adder_netlist, ["a", "b"])

    def test_dfs_order_covers_all_inputs(self, full_adder_netlist):
        order = dfs_variable_order(full_adder_netlist)
        assert sorted(order) == sorted(full_adder_netlist.inputs)

    def test_best_order_picks_minimum(self):
        # A mux chain is order-sensitive; best-of-N must not be worse
        # than the plain DFS order.
        n = Netlist("muxes")
        for i in range(4):
            n.add_input(f"d{i}")
        for i in range(2):
            n.add_input(f"s{i}")
        n.add_gate("m0", GateType.MUX, ["s0", "d1", "d0"])
        n.add_gate("m1", GateType.MUX, ["s0", "d3", "d2"])
        n.add_gate("out", GateType.MUX, ["s1", "m1", "m0"])
        n.set_output("out")
        manager, roots, order = build_best_order(n, candidates=4)
        base_manager, base_roots = build_bdd_from_netlist(n)
        assert manager.count_nodes(roots) <= base_manager.count_nodes(base_roots)

    def test_best_order_overflow_propagates(self, full_adder_netlist):
        with pytest.raises(BddOverflowError):
            build_best_order(full_adder_netlist, node_limit=1)


class TestSynthesis:
    def test_costs_match_compiled_steps(self, full_adder_netlist):
        manager, roots = build_bdd_from_netlist(full_adder_netlist)
        costs = bdd_rram_costs(manager, roots)
        program = compile_bdd(manager, roots)
        assert program.num_steps == costs.steps
        assert costs.nodes == manager.count_nodes(roots)

    def test_program_computes_netlist(self, full_adder_netlist):
        manager, roots = build_bdd_from_netlist(full_adder_netlist)
        order = dfs_variable_order(full_adder_netlist)
        inv = {name: i for i, name in enumerate(full_adder_netlist.inputs)}
        program = compile_bdd(manager, roots, [inv[n] for n in order])
        tables = reference_full_adder_tables()
        for assignment in range(8):
            vec = [bool((assignment >> i) & 1) for i in range(3)]
            assert run_program(program, vec) == [
                t.value_at(assignment) for t in tables
            ]

    def test_port_limit_increases_steps(self):
        # Parity over 8 vars has 2 nodes/level: port limit 1 must
        # serialize and cost more steps than the default.
        from repro.mig import mig_from_truth_tables, mig_to_netlist

        netlist = mig_to_netlist(mig_from_truth_tables(parity_function(8)))
        manager, roots = build_bdd_from_netlist(netlist)
        wide = bdd_rram_costs(manager, roots, port_limit=16)
        narrow = bdd_rram_costs(manager, roots, port_limit=1)
        assert narrow.steps > wide.steps
        program = compile_bdd(manager, roots, port_limit=1)
        assert program.num_steps == narrow.steps

    def test_constant_root(self):
        from repro.bdd import FALSE, TRUE, Bdd

        manager = Bdd(2)
        program = compile_bdd(manager, [TRUE, FALSE])
        assert run_program(program, [False, False]) == [True, False]

    def test_steps_scale_with_nodes_not_depth(self):
        """The paper's core observation: BDD steps track node count."""
        from repro.mig import mig_from_truth_tables, mig_to_netlist
        from repro.truth import count_ones_function

        small = mig_to_netlist(mig_from_truth_tables(parity_function(6)))
        large = mig_to_netlist(
            mig_from_truth_tables(count_ones_function(8, 4))
        )
        m1, r1 = build_bdd_from_netlist(small)
        m2, r2 = build_bdd_from_netlist(large)
        c1 = bdd_rram_costs(m1, r1)
        c2 = bdd_rram_costs(m2, r2)
        assert c2.nodes > c1.nodes
        assert c2.steps > c1.steps
