"""Tests for the micro-op ISA and the array executor."""

import pytest

from repro.rram import (
    ExecutionError,
    Imp,
    IntrinsicMaj,
    LoadInput,
    Program,
    RramArray,
    Step,
    WriteCopy,
    WriteLiteral,
    run_program,
)


class TestImpSemantics:
    """Paper Fig. 1(b): q' = !p + q."""

    def test_truth_table(self):
        expected = {(0, 0): 1, (0, 1): 1, (1, 0): 0, (1, 1): 1}
        for (p, q), q_next in expected.items():
            array = RramArray(2)
            array.devices[0].write(bool(p))
            array.devices[1].write(bool(q))
            array.execute_step(Step([Imp(0, 1)]))
            assert array.state(1) == bool(q_next), (p, q)

    def test_source_unchanged(self):
        array = RramArray(2)
        array.devices[0].write(True)
        array.execute_step(Step([Imp(0, 1)]))
        assert array.state(0) is True


class TestStepSemantics:
    def test_reads_see_pre_step_state(self):
        # Swap two devices via simultaneous copies: only possible when
        # reads snapshot the pre-step state.
        array = RramArray(2)
        array.devices[0].write(True)
        array.devices[1].write(False)
        array.execute_step(Step([WriteCopy(0, 1), WriteCopy(1, 0)]))
        assert array.states() == [False, True]

    def test_write_conflict_rejected(self):
        array = RramArray(2)
        with pytest.raises(ExecutionError):
            array.execute_step(
                Step([WriteLiteral(0, True), WriteLiteral(0, False)])
            )

    def test_write_copy_negate(self):
        array = RramArray(2)
        array.devices[0].write(True)
        array.execute_step(Step([WriteCopy(1, 0, negate=True)]))
        assert array.state(1) is False

    def test_intrinsic_maj_op(self):
        # dst <- M(val(p), !val(q), dst)
        array = RramArray(3)
        array.devices[0].write(True)   # p
        array.devices[1].write(False)  # q  -> !q = 1
        array.execute_step(Step([IntrinsicMaj(2, p=0, q=1)]))
        assert array.state(2) is True

    def test_load_input(self):
        array = RramArray(1)
        array.execute_step(Step([LoadInput(0, 1)]), inputs=[False, True])
        assert array.state(0) is True

    def test_load_input_out_of_range(self):
        array = RramArray(1)
        with pytest.raises(ExecutionError):
            array.execute_step(Step([LoadInput(0, 3)]), inputs=[False])

    def test_steps_counted(self):
        array = RramArray(1)
        array.execute_step(Step([WriteLiteral(0, True)]))
        array.execute_step(Step([WriteLiteral(0, False)]))
        assert array.steps_executed == 2


class TestProgramValidation:
    def test_duplicate_write_rejected(self):
        program = Program(
            name="bad", realization="imp", num_devices=1,
            steps=[Step([WriteLiteral(0, True), WriteLiteral(0, False)])],
        )
        with pytest.raises(ValueError):
            program.validate()

    def test_device_range_checked(self):
        program = Program(
            name="bad", realization="imp", num_devices=1,
            steps=[Step([Imp(0, 5)])],
        )
        with pytest.raises(ValueError):
            program.validate()

    def test_input_range_checked(self):
        program = Program(
            name="bad", realization="imp", num_devices=1, num_inputs=1,
            steps=[Step([LoadInput(0, 4)])],
        )
        with pytest.raises(ValueError):
            program.validate()

    def test_step_read_write_sets(self):
        step = Step([Imp(0, 1), WriteCopy(3, 2), IntrinsicMaj(6, 4, 5)])
        assert step.written_devices() == [1, 3, 6]
        assert sorted(step.read_devices()) == [0, 2, 4, 5]


class TestRunProgram:
    def test_arity_checked(self):
        program = Program(
            name="p", realization="imp", num_devices=1, num_inputs=2,
            steps=[Step([LoadInput(0, 0)])], output_devices={0: 0},
        )
        with pytest.raises(ExecutionError):
            run_program(program, [True])

    def test_identity_program(self):
        program = Program(
            name="wire", realization="imp", num_devices=1, num_inputs=1,
            steps=[Step([LoadInput(0, 0)])], output_devices={0: 0},
        )
        assert run_program(program, [True]) == [True]
        assert run_program(program, [False]) == [False]

    def test_outputs_sorted_by_index(self):
        program = Program(
            name="two", realization="imp", num_devices=2, num_inputs=2,
            steps=[Step([LoadInput(0, 0), LoadInput(1, 1)])],
            output_devices={1: 0, 0: 1},
        )
        # Output 0 reads device 1, output 1 reads device 0.
        assert run_program(program, [True, False]) == [False, True]
