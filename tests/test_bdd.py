"""Tests for the ROBDD package."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, Bdd, BddOverflowError
from repro.truth import TruthTable, table_mask


def bdd_to_table(manager: Bdd, root: int) -> TruthTable:
    bits = 0
    for assignment in range(1 << manager.num_vars):
        vec = [bool((assignment >> i) & 1) for i in range(manager.num_vars)]
        if manager.evaluate(root, vec):
            bits |= 1 << assignment
    return TruthTable(manager.num_vars, bits)


class TestBasics:
    def test_terminals(self):
        manager = Bdd(2)
        assert manager.is_terminal(FALSE)
        assert manager.is_terminal(TRUE)
        assert manager.evaluate(TRUE, [False, False])
        assert not manager.evaluate(FALSE, [True, True])

    def test_var(self):
        manager = Bdd(3)
        x1 = manager.var(1)
        assert manager.evaluate(x1, [False, True, False])
        assert not manager.evaluate(x1, [True, False, True])

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            Bdd(2).var(2)

    def test_mk_reduction(self):
        manager = Bdd(2)
        x = manager.var(0)
        assert manager.mk(1, x, x) == x  # lo == hi collapses

    def test_mk_hash_consing(self):
        manager = Bdd(2)
        a = manager.mk(0, FALSE, TRUE)
        b = manager.mk(0, FALSE, TRUE)
        assert a == b

    def test_node_limit(self):
        manager = Bdd(8, node_limit=4)
        with pytest.raises(BddOverflowError):
            acc = TRUE
            for i in range(8):
                acc = manager.apply_and(acc, manager.var(i))


class TestOperators:
    def test_and_or_not_xor(self):
        manager = Bdd(2)
        a, b = manager.var(0), manager.var(1)
        va, vb = TruthTable.variable(2, 0), TruthTable.variable(2, 1)
        assert bdd_to_table(manager, manager.apply_and(a, b)) == (va & vb)
        assert bdd_to_table(manager, manager.apply_or(a, b)) == (va | vb)
        assert bdd_to_table(manager, manager.apply_xor(a, b)) == (va ^ vb)
        assert bdd_to_table(manager, manager.apply_not(a)) == ~va

    def test_maj(self):
        manager = Bdd(3)
        f = manager.apply_maj(manager.var(0), manager.var(1), manager.var(2))
        expected = TruthTable.from_function(3, lambda i: sum(i) >= 2)
        assert bdd_to_table(manager, f) == expected

    def test_ite(self):
        manager = Bdd(3)
        f = manager.ite(manager.var(0), manager.var(1), manager.var(2))
        expected = TruthTable.from_function(3, lambda i: i[1] if i[0] else i[2])
        assert bdd_to_table(manager, f) == expected

    def test_ite_terminal_shortcuts(self):
        manager = Bdd(2)
        a = manager.var(0)
        assert manager.ite(TRUE, a, FALSE) == a
        assert manager.ite(FALSE, a, TRUE) == TRUE
        assert manager.ite(a, TRUE, FALSE) == a
        assert manager.ite(a, a, a) == a


class TestCanonicity:
    @given(st.integers(0, table_mask(4)))
    @settings(max_examples=50, deadline=None)
    def test_same_function_same_node(self, bits):
        """Canonicity: building a function minterm-by-minterm and via
        its complement's complement must give the identical node."""
        table = TruthTable(4, bits)
        manager = Bdd(4)

        def build(t: TruthTable) -> int:
            acc = FALSE
            for assignment in t.assignments_where(True):
                cube = TRUE
                for i in range(4):
                    var = manager.var(i)
                    lit = var if (assignment >> i) & 1 else manager.apply_not(var)
                    cube = manager.apply_and(cube, lit)
                acc = manager.apply_or(acc, cube)
            return acc

        direct = build(table)
        complemented = manager.apply_not(build(~table))
        assert direct == complemented
        assert bdd_to_table(manager, direct) == table

    def test_xor_bdd_size_linear(self):
        manager = Bdd(8)
        acc = FALSE
        for i in range(8):
            acc = manager.apply_xor(acc, manager.var(i))
        # Canonical parity BDD: 2 nodes per level except the first.
        assert manager.count_nodes([acc]) == 2 * 8 - 1


class TestQueries:
    def test_count_nodes_shared(self):
        manager = Bdd(3)
        a, b, c = (manager.var(i) for i in range(3))
        f = manager.apply_and(b, c)
        g = manager.apply_and(a, f)  # g tests a first, then falls into f
        assert manager.count_nodes([f, g]) == manager.count_nodes([g])
        assert manager.count_nodes([f, f]) == manager.count_nodes([f])

    def test_nodes_per_level(self):
        manager = Bdd(3)
        acc = FALSE
        for i in range(3):
            acc = manager.apply_xor(acc, manager.var(i))
        histogram = manager.nodes_per_level([acc])
        assert histogram == [1, 2, 2]

    def test_satisfy_count(self):
        manager = Bdd(4)
        a, b = manager.var(0), manager.var(1)
        f = manager.apply_and(a, b)
        assert manager.satisfy_count(f) == 4  # 2 free variables
        assert manager.satisfy_count(TRUE) == 16
        assert manager.satisfy_count(FALSE) == 0

    @given(st.integers(0, table_mask(4)))
    @settings(max_examples=30, deadline=None)
    def test_satisfy_count_matches_table(self, bits):
        table = TruthTable(4, bits)
        manager = Bdd(4)
        acc = FALSE
        for assignment in table.assignments_where(True):
            cube = TRUE
            for i in range(4):
                var = manager.var(i)
                lit = var if (assignment >> i) & 1 else manager.apply_not(var)
                cube = manager.apply_and(cube, lit)
            acc = manager.apply_or(acc, cube)
        assert manager.satisfy_count(acc) == table.count_ones()

    def test_support(self):
        manager = Bdd(4)
        f = manager.apply_and(manager.var(0), manager.var(3))
        assert manager.support(f) == (0, 3)
