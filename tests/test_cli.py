"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synth_defaults(self):
        args = build_parser().parse_args(["synth", "xor5_d"])
        assert args.algorithm == "rram"
        assert args.realization == "maj"
        assert args.effort == 40

    def test_table3_requires_baseline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3"])


class TestCommands:
    def test_bench_list(self, capsys):
        assert main(["bench-list"]) == 0
        out = capsys.readouterr().out
        assert "parity" in out
        assert "xor5_d" in out

    def test_synth_benchmark(self, capsys):
        code = main([
            "synth", "xor5_d", "--algorithm", "steps",
            "--effort", "6", "--verify", "--compile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "equivalence  : PASS" in out
        assert "execution    : PASS" in out

    def test_synth_none_algorithm(self, capsys):
        assert main(["synth", "rd53f1", "--algorithm", "none"]) == 0
        out = capsys.readouterr().out
        assert "initial" in out

    def test_synth_profile_counters(self, capsys):
        code = main([
            "synth", "xor5_d", "--algorithm", "steps",
            "--effort", "4", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile      : cost-view + transaction counters" in out
        for counter in (
            "full_recomputes", "delta_updates", "cache_hits",
            "moves_tried", "moves_accepted",
            "tx_checkpoints", "tx_rollbacks", "tx_undo_replayed",
            "strash_hits", "strash_misses",
        ):
            assert counter in out

    def test_synth_profile_without_optimizer(self, capsys):
        code = main([
            "synth", "rd53f1", "--algorithm", "none", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no cost-view + transaction counters recorded" in out

    def test_synth_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(a, b)\n"
        )
        code = main(["synth", str(path), "--effort", "4", "--verify"])
        assert code == 0

    def test_synth_pla_file(self, tmp_path):
        path = tmp_path / "tiny.pla"
        path.write_text(".i 2\n.o 1\n11 1\n.e\n")
        assert main(["synth", str(path), "--effort", "4"]) == 0

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["synth", "does-not-exist"])

    def test_table2_subset(self, capsys):
        code = main(["table2", "x2", "--effort", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "x2" in out
        assert "SUM" in out

    def test_table3_aig_subset(self, capsys):
        code = main([
            "table3", "--baseline", "aig", "xor5_d", "--effort", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "AIG" in out

    def test_table3_bdd_subset(self, capsys):
        code = main([
            "table3", "--baseline", "bdd", "x2", "--effort", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "BDD" in out


    def test_synth_plim_backend(self, capsys):
        code = main([
            "synth", "rd53f1", "--algorithm", "steps", "--effort", "6",
            "--compile", "--backend", "plim", "--verify",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "RM3" in out
        assert "execution    : PASS" in out

    def test_synth_pla_minimize(self, tmp_path, capsys):
        path = tmp_path / "redundant.pla"
        path.write_text(
            ".i 3\n.o 1\n000 1\n001 1\n010 1\n011 1\n111 1\n.e\n"
        )
        assert main([
            "synth", str(path), "--minimize", "--effort", "4", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "equivalence  : PASS" in out

    def test_convert_roundtrip(self, tmp_path, capsys):
        bench = tmp_path / "fa.bench"
        bench.write_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = XOR(a, b)\n"
        )
        target = tmp_path / "fa.v"
        assert main(["convert", str(bench), str(target)]) == 0
        assert target.read_text().startswith("module")
        back = tmp_path / "fa2.blif"
        assert main(["convert", str(target), str(back)]) == 0
        from repro.io import read_bench, read_blif

        assert (
            read_blif(str(back)).truth_tables()
            == read_bench(str(bench)).truth_tables()
        )

    def test_convert_benchmark_to_pla(self, tmp_path):
        target = tmp_path / "xor5.pla"
        assert main(["convert", "xor5_d", str(target)]) == 0
        from repro.io import pla_truth_tables, read_pla
        from repro.truth import parity_function

        assert pla_truth_tables(read_pla(str(target))) == parity_function(5)

    def test_report_subset(self, tmp_path, monkeypatch, capsys):
        # Restrict to a tiny subset by monkeypatching the name lists.
        import repro.flows.experiments as experiments

        monkeypatch.setattr(experiments, "large_names", lambda: ["x2"])
        monkeypatch.setattr(experiments, "small_names", lambda: ["xor5_d"])
        code = main([
            "report", "--output", str(tmp_path / "out"), "--effort", "4",
        ])
        assert code == 0
        assert (tmp_path / "out" / "table2_full.txt").exists()
        assert (tmp_path / "out" / "table3_full.txt").exists()
        assert "SUM" in (tmp_path / "out" / "table2_full.txt").read_text()
