"""Smoke tests: every example script must run cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    if path.name == "reproduce_table2.py":
        args = [sys.executable, str(path), "x2", "parity"]
    else:
        args = [sys.executable, str(path)]
    completed = subprocess.run(
        args, capture_output=True, text=True, timeout=600
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()
