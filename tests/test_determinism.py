"""Same seed, same everything.

The synthesis stack must be bit-for-bit reproducible: two runs of the
same flow with the same seed have to emit identical cost reports and
identical compiled programs, down to dataclass equality of every step.
This is what makes fuzz bundles replayable and results/ regenerable.
"""

from repro.benchmarks import load_netlist
from repro.cli import main
from repro.fuzz import FuzzConfig, case_netlist, run_fuzz
from repro.mig import (
    Realization,
    anneal_complements,
    mig_from_netlist,
    optimize_rram,
    rram_costs,
)
from repro.rram import compile_mig


def _synth_once(name, realization, effort):
    mig = mig_from_netlist(load_netlist(name))
    optimize_rram(mig, realization, effort)
    report = compile_mig(mig, realization)
    return rram_costs(mig, realization), report


class TestFlowDeterminism:
    def test_identical_programs_and_costs(self):
        for realization in (Realization.IMP, Realization.MAJ):
            first_costs, first = _synth_once("misex1", realization, 8)
            second_costs, second = _synth_once("misex1", realization, 8)
            assert first_costs == second_costs
            assert first.analytic == second.analytic
            assert first.measured_steps == second.measured_steps
            assert first.program == second.program  # step-for-step

    def test_annealing_is_seeded(self):
        runs = []
        for _ in range(2):
            mig = mig_from_netlist(load_netlist("rd53f1"))
            anneal_complements(
                mig, Realization.MAJ, iterations=200, seed=7
            )
            runs.append(rram_costs(mig, Realization.MAJ))
        assert runs[0] == runs[1]

    def test_cli_synth_output_is_stable(self, capsys):
        outputs = []
        for _ in range(2):
            code = main([
                "synth", "xor5_d", "--algorithm", "rram",
                "--effort", "8", "--compile", "--verify",
            ])
            assert code == 0
            out = capsys.readouterr().out
            # Runtime wall-clock is the one legitimately varying line.
            outputs.append(
                "\n".join(
                    line for line in out.splitlines()
                    if not line.startswith("runtime")
                )
            )
        assert outputs[0] == outputs[1]


class TestFuzzDeterminism:
    def test_case_generation_is_pure_in_seed(self):
        for kind in ("mig", "table", "gates"):
            first = case_netlist(kind, 1234)
            second = case_netlist(kind, 1234)
            assert first.truth_tables() == second.truth_tables()
            assert first.stats() == second.stats()

    def test_campaigns_agree_case_for_case(self, tmp_path):
        # max_cases bounds the work; the seconds are a safety rail only
        # (the full oracle costs ~80s for this seed's six cases on the
        # reference box, and a truncated campaign can't agree
        # case-for-case with an untruncated one).
        reports = [
            run_fuzz(FuzzConfig(
                seconds=240.0, seed=9, max_cases=6,
                out_dir=str(tmp_path / f"run{i}"),
            ))
            for i in range(2)
        ]
        assert reports[0].cases_run == reports[1].cases_run == 6
        assert reports[0].failures == reports[1].failures == []
        assert reports[0].cases_by_kind == reports[1].cases_by_kind
