"""Unit tests for the bit-parallel truth-table engine."""

import pytest

from repro.truth import (
    TruthTable,
    all_tables,
    if_then_else,
    table_mask,
    ternary_majority,
    variable_pattern,
)


class TestConstruction:
    def test_constant_false(self):
        table = TruthTable.constant(3, False)
        assert table.bits == 0
        assert table.is_constant()

    def test_constant_true(self):
        table = TruthTable.constant(3, True)
        assert table.bits == 0xFF
        assert table.is_constant()

    def test_zero_variables(self):
        assert TruthTable.constant(0, True).bits == 1
        assert TruthTable.constant(0, False).bits == 0

    def test_variable_patterns(self):
        assert TruthTable.variable(2, 0).bits == 0b1010
        assert TruthTable.variable(2, 1).bits == 0b1100
        assert TruthTable.variable(3, 2).bits == 0xF0

    def test_variable_pattern_function(self):
        assert variable_pattern(3, 0) == 0xAA
        assert variable_pattern(3, 1) == 0xCC

    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.variable(3, 3)
        with pytest.raises(ValueError):
            TruthTable.variable(3, -1)

    def test_negative_num_vars_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(-1, 0)

    def test_bits_overflow_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(1, 0b10000)

    def test_from_function_majority(self):
        maj = TruthTable.from_function(3, lambda i: sum(i) >= 2)
        assert maj.to_hex_string() == "e8"

    def test_from_binary_string_and(self):
        table = TruthTable.from_binary_string("1000")
        a = TruthTable.variable(2, 0)
        b = TruthTable.variable(2, 1)
        assert table == (a & b)

    def test_from_binary_string_rejects_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_binary_string("101")

    def test_from_binary_string_rejects_bad_char(self):
        with pytest.raises(ValueError):
            TruthTable.from_binary_string("10x0")

    def test_from_hex_string(self):
        assert TruthTable.from_hex_string(3, "e8") == TruthTable.from_function(
            3, lambda i: sum(i) >= 2
        )

    def test_binary_roundtrip(self):
        table = TruthTable(3, 0b11001010)
        assert TruthTable.from_binary_string(table.to_binary_string()) == table


class TestAccessors:
    def test_value_at(self):
        a = TruthTable.variable(2, 0)
        assert a.value_at(1) is True
        assert a.value_at(2) is False

    def test_value_at_out_of_range(self):
        with pytest.raises(IndexError):
            TruthTable.variable(2, 0).value_at(4)

    def test_evaluate(self):
        maj = TruthTable.from_function(3, lambda i: sum(i) >= 2)
        assert maj.evaluate([True, True, False]) is True
        assert maj.evaluate([True, False, False]) is False

    def test_evaluate_arity_check(self):
        with pytest.raises(ValueError):
            TruthTable.variable(2, 0).evaluate([True])

    def test_count_ones(self):
        assert TruthTable.variable(3, 0).count_ones() == 4
        assert TruthTable.constant(3, True).count_ones() == 8

    def test_num_entries(self):
        assert TruthTable.constant(4, False).num_entries == 16

    def test_depends_on(self):
        a = TruthTable.variable(3, 0)
        assert a.depends_on(0)
        assert not a.depends_on(1)

    def test_support(self):
        a = TruthTable.variable(3, 0)
        c = TruthTable.variable(3, 2)
        assert (a & c).support() == (0, 2)

    def test_assignments_where(self):
        a = TruthTable.variable(2, 0)
        assert list(a.assignments_where(True)) == [1, 3]
        assert list(a.assignments_where(False)) == [0, 2]


class TestOperators:
    def test_and_or_xor_not(self):
        a = TruthTable.variable(2, 0)
        b = TruthTable.variable(2, 1)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110
        assert (~a).bits == 0b0101

    def test_double_negation(self):
        a = TruthTable.variable(4, 2)
        assert ~~a == a

    def test_implies(self):
        a = TruthTable.variable(1, 0)
        t = TruthTable.constant(1, True)
        assert a.implies(a) == t
        assert t.implies(a) == a

    def test_mismatched_vars_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.variable(2, 0) & TruthTable.variable(3, 0)

    def test_non_table_operand_rejected(self):
        with pytest.raises(TypeError):
            TruthTable.variable(2, 0) & 3  # type: ignore[operator]

    def test_ternary_majority(self):
        a, b, c = (TruthTable.variable(3, i) for i in range(3))
        maj = ternary_majority(a, b, c)
        assert maj == TruthTable.from_function(3, lambda i: sum(i) >= 2)

    def test_if_then_else(self):
        a, b, c = (TruthTable.variable(3, i) for i in range(3))
        ite = if_then_else(a, b, c)
        expected = TruthTable.from_function(
            3, lambda i: i[1] if i[0] else i[2]
        )
        assert ite == expected


class TestCofactors:
    def test_cofactor_variable_itself(self):
        a = TruthTable.variable(3, 1)
        assert a.cofactor(1, True) == TruthTable.constant(3, True)
        assert a.cofactor(1, False) == TruthTable.constant(3, False)

    def test_shannon_expansion(self):
        f = TruthTable.from_function(3, lambda i: (i[0] and i[1]) or i[2])
        x = TruthTable.variable(3, 0)
        rebuilt = (x & f.cofactor(0, True)) | (~x & f.cofactor(0, False))
        assert rebuilt == f

    def test_cofactor_removes_dependence(self):
        f = TruthTable.from_function(3, lambda i: i[0] != i[2])
        assert not f.cofactor(2, True).depends_on(2)

    def test_extend(self):
        a2 = TruthTable.variable(2, 0)
        a4 = a2.extend(4)
        assert a4 == TruthTable.variable(4, 0)

    def test_extend_shrinking_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.variable(3, 0).extend(2)


class TestDunder:
    def test_equality_and_hash(self):
        a = TruthTable.variable(3, 0)
        b = TruthTable.variable(3, 0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TruthTable.variable(3, 1)
        assert a != TruthTable.variable(4, 0)

    def test_repr_contains_hex(self):
        assert "0x" in repr(TruthTable.variable(3, 0))

    def test_table_mask(self):
        assert table_mask(0) == 1
        assert table_mask(3) == 0xFF
        with pytest.raises(ValueError):
            table_mask(-1)

    def test_all_tables_count(self):
        assert len(list(all_tables(1))) == 4
        assert len(list(all_tables(2))) == 16
