"""Tests for the RRAM device model against the paper's truth tables."""

import pytest

from repro.rram import RramDevice, next_state


class TestFig2IntrinsicMajority:
    """Paper Fig. 2: R' = M(P, !Q, R)."""

    def test_r0_table(self):
        # R = 0: R' = P AND (NOT Q).
        expected = {(0, 0): 0, (0, 1): 0, (1, 0): 1, (1, 1): 0}
        for (p, q), r_next in expected.items():
            assert next_state(bool(p), bool(q), False) == bool(r_next)

    def test_r1_table(self):
        # R = 1: R' = P OR (NOT Q).
        expected = {(0, 0): 1, (0, 1): 0, (1, 0): 1, (1, 1): 1}
        for (p, q), r_next in expected.items():
            assert next_state(bool(p), bool(q), True) == bool(r_next)

    def test_is_majority_of_p_notq_r(self):
        for p in (False, True):
            for q in (False, True):
                for r in (False, True):
                    votes = int(p) + int(not q) + int(r)
                    assert next_state(p, q, r) == (votes >= 2)


class TestDevice:
    def test_initial_state(self):
        assert RramDevice().state is False
        assert RramDevice(True).state is True

    def test_set_clear(self):
        device = RramDevice()
        device.set()
        assert device.state is True
        device.clear()
        assert device.state is False

    def test_write(self):
        device = RramDevice()
        device.write(True)
        assert device.state is True
        device.write(False)
        assert device.state is False

    def test_hold_is_vcond(self):
        # P == Q: state retained (the VCOND condition).
        for state in (False, True):
            for level in (False, True):
                device = RramDevice(state)
                device.apply(level, level)
                assert device.state is state

    def test_write_counter(self):
        device = RramDevice()
        device.set()
        device.clear()
        device.apply(False, False)
        assert device.writes == 3

    def test_repr(self):
        assert "state=1" in repr(RramDevice(True))
