"""Tests for the equivalence-checking helpers."""

import pytest

from repro.mig import (
    EquivalenceGuard,
    Mig,
    mig_from_truth_tables,
    mig_matches_tables,
    migs_equivalent,
    signal_not,
)
from repro.truth import parity_function


def test_migs_equivalent_identical():
    a = mig_from_truth_tables(parity_function(5))
    b = mig_from_truth_tables(parity_function(5))
    assert migs_equivalent(a, b)


def test_migs_equivalent_detects_difference():
    a = mig_from_truth_tables(parity_function(5))
    b = mig_from_truth_tables(parity_function(5))
    b.set_po(0, signal_not(b.pos[0]))
    assert not migs_equivalent(a, b)


def test_migs_equivalent_interface_mismatch():
    a = mig_from_truth_tables(parity_function(5))
    b = mig_from_truth_tables(parity_function(6))
    assert not migs_equivalent(a, b)


def test_migs_equivalent_random_mode():
    a = mig_from_truth_tables(parity_function(5))
    b = mig_from_truth_tables(parity_function(5))
    assert migs_equivalent(a, b, exhaustive_limit=2, num_vectors=256)
    b.set_po(0, signal_not(b.pos[0]))
    assert not migs_equivalent(a, b, exhaustive_limit=2, num_vectors=256)


def test_mig_matches_tables():
    tables = parity_function(5)
    mig = mig_from_truth_tables(tables)
    assert mig_matches_tables(mig, tables)
    assert not mig_matches_tables(mig, [~tables[0]])
    assert not mig_matches_tables(mig, tables + tables)


def test_guard_detects_mutation():
    mig = mig_from_truth_tables(parity_function(5))
    guard = EquivalenceGuard(mig)
    assert guard.verify()
    mig.set_po(0, signal_not(mig.pos[0]))
    assert not guard.verify()
    with pytest.raises(AssertionError):
        guard.verify_or_raise()


def test_guard_random_mode():
    mig = mig_from_truth_tables(parity_function(5))
    guard = EquivalenceGuard(mig, exhaustive_limit=2, num_vectors=128)
    assert guard.verify()
    mig.set_po(0, signal_not(mig.pos[0]))
    assert not guard.verify()


def test_guard_tracks_structure_not_snapshot():
    """The guard holds a reference: later equivalent rewrites pass."""
    mig = mig_from_truth_tables(parity_function(5))
    guard = EquivalenceGuard(mig)
    # Double complement is a no-op.
    mig.set_po(0, signal_not(signal_not(mig.pos[0])))
    assert guard.verify()
