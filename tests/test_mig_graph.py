"""Unit tests for the MIG core data structure."""

import pytest

from repro.mig import (
    CONST0,
    CONST1,
    Mig,
    MigError,
    make_signal,
    signal_is_complemented,
    signal_node,
    signal_not,
)
from repro.truth import TruthTable, ternary_majority


class TestSignals:
    def test_encoding(self):
        assert make_signal(5) == 10
        assert make_signal(5, True) == 11
        assert signal_node(11) == 5
        assert signal_is_complemented(11)
        assert not signal_is_complemented(10)

    def test_negation(self):
        assert signal_not(10) == 11
        assert signal_not(signal_not(10)) == 10

    def test_constants(self):
        assert CONST0 == 0
        assert CONST1 == 1
        assert signal_not(CONST0) == CONST1


class TestConstruction:
    def test_pis_and_pos(self):
        mig = Mig("m")
        a = mig.add_pi("a")
        mig.add_po(a, "f")
        assert mig.num_pis == 1
        assert mig.num_pos == 1
        assert mig.pi_names == ["a"]
        assert mig.po_names == ["f"]
        assert mig.is_pi(signal_node(a))

    def test_default_names(self):
        mig = Mig()
        mig.add_pi()
        mig.add_po(CONST0)
        assert mig.pi_names == ["x0"]
        assert mig.po_names == ["f0"]

    def test_make_maj_creates_node(self, maj3_mig):
        assert maj3_mig.num_gates() == 1

    def test_strashing_shares_nodes(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        f1 = mig.make_maj(a, b, c)
        f2 = mig.make_maj(c, a, b)  # Ω.C implicit in sorted children
        assert f1 == f2

    def test_majority_rule_equal_children(self):
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        assert mig.make_maj(a, a, b) == a

    def test_majority_rule_complementary_children(self):
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        assert mig.make_maj(a, signal_not(a), b) == b

    def test_and_or_via_constants(self):
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        land = mig.make_and(a, b)
        lor = mig.make_or(a, b)
        mig.add_po(land)
        mig.add_po(lor)
        t_and, t_or = mig.truth_tables()
        va, vb = TruthTable.variable(2, 0), TruthTable.variable(2, 1)
        assert t_and == (va & vb)
        assert t_or == (va | vb)

    def test_xor_and_mux(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        mig.add_po(mig.make_xor(a, b))
        mig.add_po(mig.make_mux(a, b, c))
        t_xor, t_mux = mig.truth_tables()
        va, vb, vc = (TruthTable.variable(3, i) for i in range(3))
        assert t_xor == (va ^ vb)
        assert t_mux == (va & vb) | (~va & vc)

    def test_constant_simplifications(self):
        mig = Mig()
        a = mig.add_pi()
        assert mig.make_and(a, CONST1) == a
        assert mig.make_and(a, CONST0) == CONST0
        assert mig.make_or(a, CONST0) == a
        assert mig.make_or(a, CONST1) == CONST1

    def test_bad_signal_rejected(self):
        mig = Mig()
        a = mig.add_pi()
        with pytest.raises(MigError):
            mig.make_maj(a, 998, CONST0)

    def test_children_sorted(self, maj3_mig):
        (node,) = maj3_mig.reachable_nodes()
        children = maj3_mig.children(node)
        assert list(children) == sorted(children)

    def test_children_of_pi_rejected(self):
        mig = Mig()
        a = mig.add_pi()
        with pytest.raises(MigError):
            mig.children(signal_node(a))


class TestFanout:
    def test_fanout_tracking(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        f = mig.make_maj(a, b, c)
        g = mig.make_and(f, a)
        assert mig.fanout_size(signal_node(f)) == 1
        assert signal_node(g) in mig.fanout_counts(signal_node(f))

    def test_po_refs(self):
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        f = mig.make_and(a, b)
        mig.add_po(f)
        mig.add_po(signal_not(f))
        assert mig.po_refs(signal_node(f)) == [0, 1]


class TestSimulation:
    def test_maj_truth_table(self, maj3_mig):
        (table,) = maj3_mig.truth_tables()
        a, b, c = (TruthTable.variable(3, i) for i in range(3))
        assert table == ternary_majority(a, b, c)

    def test_complemented_po(self, maj3_mig):
        po = maj3_mig.pos[0]
        maj3_mig.set_po(0, signal_not(po))
        (table,) = maj3_mig.truth_tables()
        a, b, c = (TruthTable.variable(3, i) for i in range(3))
        assert table == ~ternary_majority(a, b, c)

    def test_simulate_words_width(self, maj3_mig):
        with pytest.raises(MigError):
            maj3_mig.simulate_words([0, 0], 1)

    def test_constant_po(self):
        mig = Mig()
        mig.add_pi()
        mig.add_po(CONST1)
        (table,) = mig.truth_tables()
        assert table == TruthTable.constant(1, True)


class TestSubstitution:
    def test_substitute_redirects_po(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        f = mig.make_maj(a, b, c)
        mig.add_po(f)
        # Replace by an equivalent reconstruction (same function).
        g = mig.make_maj(signal_not(a), signal_not(b), signal_not(c))
        mig.substitute(signal_node(f), signal_not(g))
        (table,) = mig.truth_tables()
        va, vb, vc = (TruthTable.variable(3, i) for i in range(3))
        assert table == ternary_majority(va, vb, vc)

    def test_substitute_merges_parents(self):
        mig = Mig()
        a, b, c, d = (mig.add_pi() for _ in range(4))
        f1 = mig.make_maj(a, b, c)
        f2 = mig.make_maj(a, b, d)
        g1 = mig.make_and(f1, d)
        g2 = mig.make_and(f2, d)
        mig.add_po(g1)
        mig.add_po(g2)
        before = mig.num_gates()
        # Claim f2 == f1 (not true functionally, but structurally the
        # mechanics are what we test: parents g1/g2 must merge).
        mig.substitute(signal_node(f2), f1)
        assert mig.num_gates() < before
        assert mig.pos[0] == mig.pos[1]

    def test_substitute_cascades_majority_rule(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        f = mig.make_maj(a, b, c)
        g = mig.make_and(f, a)  # M(f, a, 0)
        mig.add_po(g)
        # Substituting f := a turns g into M(a, a, 0) = a.
        mig.substitute(signal_node(f), a)
        assert mig.pos[0] == a

    def test_substitute_self_complement_rejected(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        f = mig.make_maj(a, b, c)
        with pytest.raises(MigError):
            mig.substitute(signal_node(f), signal_not(f))

    def test_substitute_cycle_rejected(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        f = mig.make_maj(a, b, c)
        g = mig.make_and(f, a)
        mig.add_po(g)
        with pytest.raises(MigError):
            mig.substitute(signal_node(f), g)

    def test_invariants_after_substitution(self):
        mig = Mig()
        a, b, c, d = (mig.add_pi() for _ in range(4))
        f = mig.make_maj(a, b, c)
        g = mig.make_maj(f, c, d)
        mig.add_po(g)
        mig.substitute(signal_node(f), signal_not(mig.make_maj(
            signal_not(a), signal_not(b), signal_not(c))))
        mig.check_invariants()


class TestCloneAndCopy:
    def test_clone_equivalent(self, maj3_mig):
        copy = maj3_mig.clone()
        assert copy.truth_tables() == maj3_mig.truth_tables()
        assert copy.pi_names == maj3_mig.pi_names

    def test_clone_is_independent(self, maj3_mig):
        copy = maj3_mig.clone()
        a = copy.add_pi("extra")
        assert copy.num_pis == 4
        assert maj3_mig.num_pis == 3

    def test_clone_drops_dead_nodes(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        dead = mig.make_maj(a, b, c)
        live = mig.make_and(a, b)
        mig.add_po(live)
        copy = mig.clone()
        assert copy.num_gates() == 1

    def test_copy_from_restores_state(self, maj3_mig):
        snapshot = maj3_mig.clone()
        a = maj3_mig.pis[0]
        # Mutate: complement the PO.
        maj3_mig.set_po(0, signal_not(maj3_mig.pos[0]))
        assert maj3_mig.truth_tables() != snapshot.truth_tables()
        maj3_mig.copy_from(snapshot)
        assert maj3_mig.truth_tables() == snapshot.truth_tables()

    def test_copy_from_interface_mismatch(self, maj3_mig):
        other = Mig()
        other.add_pi()
        other.add_po(CONST0)
        with pytest.raises(MigError):
            maj3_mig.copy_from(other)

    def test_repr(self, maj3_mig):
        assert "maj3" in repr(maj3_mig)
