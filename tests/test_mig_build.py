"""Tests for MIG construction from netlists and truth tables."""

import pytest

from repro.mig import (
    Realization,
    level_stats,
    mig_from_netlist,
    mig_from_truth_tables,
    mig_to_netlist,
)
from repro.network import GateType, Netlist
from repro.truth import (
    TruthTable,
    count_ones_function,
    nine_sym_function,
    parity_function,
)

from conftest import reference_full_adder_tables


class TestFromNetlist:
    def test_full_adder(self, full_adder_netlist):
        mig = mig_from_netlist(full_adder_netlist)
        assert mig.truth_tables() == reference_full_adder_tables()

    def test_every_gate_type(self):
        n = Netlist("all")
        for name in "abc":
            n.add_input(name)
        n.add_gate("g_and", GateType.AND, ["a", "b"])
        n.add_gate("g_nand", GateType.NAND, ["a", "b"])
        n.add_gate("g_or", GateType.OR, ["a", "b"])
        n.add_gate("g_nor", GateType.NOR, ["a", "b"])
        n.add_gate("g_xor", GateType.XOR, ["a", "b"])
        n.add_gate("g_xnor", GateType.XNOR, ["a", "b"])
        n.add_gate("g_not", GateType.NOT, ["a"])
        n.add_gate("g_buf", GateType.BUF, ["a"])
        n.add_gate("g_maj", GateType.MAJ, ["a", "b", "c"])
        n.add_gate("g_mux", GateType.MUX, ["a", "b", "c"])
        n.add_gate("g_c0", GateType.CONST0, [])
        n.add_gate("g_c1", GateType.CONST1, [])
        for gate in list(n.gates()):
            n.set_output(gate.name)
        mig = mig_from_netlist(n)
        assert mig.truth_tables() == n.truth_tables()

    def test_nary_gates_balanced(self):
        n = Netlist()
        for i in range(8):
            n.add_input(f"x{i}")
        n.add_gate("g", GateType.XOR, [f"x{i}" for i in range(8)])
        n.set_output("g")
        mig = mig_from_netlist(n)
        assert mig.truth_tables() == n.truth_tables()
        # Balanced tree: 3 XOR levels, 2 MIG levels each.
        assert level_stats(mig).depth <= 6

    def test_interface_names_preserved(self, full_adder_netlist):
        mig = mig_from_netlist(full_adder_netlist)
        assert mig.pi_names == ["a", "b", "cin"]
        assert mig.po_names == ["sum", "cout"]


class TestFromTruthTables:
    def test_parity(self):
        mig = mig_from_truth_tables(parity_function(6))
        assert mig.truth_tables() == parity_function(6)

    def test_nine_sym(self):
        mig = mig_from_truth_tables(nine_sym_function())
        assert mig.truth_tables() == nine_sym_function()

    def test_multi_output_sharing(self):
        tables = count_ones_function(5, 3)
        mig = mig_from_truth_tables(tables)
        assert mig.truth_tables() == tables
        # Shared cofactors must be discovered: the total must be well
        # below three independent Shannon trees.
        independent = sum(
            mig_from_truth_tables([t]).num_gates() for t in tables
        )
        assert mig.num_gates() <= independent

    def test_constant_table(self):
        mig = mig_from_truth_tables([TruthTable.constant(3, True)])
        assert mig.num_gates() == 0
        assert mig.truth_tables() == [TruthTable.constant(3, True)]

    def test_projection_table(self):
        mig = mig_from_truth_tables([TruthTable.variable(4, 2)])
        assert mig.num_gates() == 0
        assert mig.truth_tables() == [TruthTable.variable(4, 2)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mig_from_truth_tables([])

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            mig_from_truth_tables(
                [TruthTable.constant(2, True), TruthTable.constant(3, True)]
            )

    def test_xor_detection_keeps_size_small(self):
        mig = mig_from_truth_tables(parity_function(8))
        # With hi == !lo detection each variable costs 3 nodes.
        assert mig.num_gates() <= 3 * 8


class TestToNetlist:
    def test_roundtrip_function(self, maj3_mig):
        netlist = mig_to_netlist(maj3_mig)
        assert netlist.truth_tables() == maj3_mig.truth_tables()

    def test_roundtrip_complex(self):
        tables = count_ones_function(5, 3)
        mig = mig_from_truth_tables(tables, "rd53")
        netlist = mig_to_netlist(mig)
        assert netlist.truth_tables() == tables

    def test_roundtrip_via_netlist_and_back(self, full_adder_netlist):
        mig = mig_from_netlist(full_adder_netlist)
        back = mig_to_netlist(mig)
        again = mig_from_netlist(back)
        assert again.truth_tables() == mig.truth_tables()

    def test_complemented_po(self):
        from repro.mig import Mig, signal_not

        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_po(signal_not(mig.make_maj(a, b, c)))
        netlist = mig_to_netlist(mig)
        assert netlist.truth_tables() == mig.truth_tables()

    def test_constant_po(self):
        from repro.mig import CONST1, Mig

        mig = Mig()
        mig.add_pi()
        mig.add_po(CONST1)
        netlist = mig_to_netlist(mig)
        assert netlist.truth_tables() == mig.truth_tables()

    def test_shared_po_drivers(self, maj3_mig):
        maj3_mig.add_po(maj3_mig.pos[0], "g")
        netlist = mig_to_netlist(maj3_mig)
        tables = netlist.truth_tables()
        assert tables[0] == tables[1]
