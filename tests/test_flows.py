"""Tests for the experiment flows and table rendering."""

import pytest

from repro.benchmarks import paperdata
from repro.flows import (
    TABLE2_CONFIGS,
    largest_function_ratio,
    render_summary,
    render_table2,
    render_table3,
    run_table2,
    run_table3_aig,
    run_table3_bdd,
    summarize_table2,
)

SUBSET = ["x2", "parity"]
SMALL_SUBSET = ["xor5_d", "rd53f1"]


@pytest.fixture(scope="module")
def table2_result():
    return run_table2(SUBSET, effort=6, verify=True)


@pytest.fixture(scope="module")
def table3_bdd_result():
    return run_table3_bdd(SUBSET, effort=6, verify=True)


@pytest.fixture(scope="module")
def table3_aig_result():
    return run_table3_aig(SMALL_SUBSET, effort=6, verify=True)


class TestTable2:
    def test_all_configs_present(self, table2_result):
        for name in SUBSET:
            assert set(table2_result.rows[name]) == set(TABLE2_CONFIGS)

    def test_verified(self, table2_result):
        for row in table2_result.rows.values():
            for cell in row.values():
                assert cell.verified is True

    def test_maj_cheaper_than_imp(self, table2_result):
        for row in table2_result.rows.values():
            assert row["rram_maj"].steps < row["rram_imp"].steps
            assert row["step_maj"].steps < row["step_imp"].steps

    def test_step_opt_best_steps(self, table2_result):
        for row in table2_result.rows.values():
            assert row["step_maj"].steps <= row["area_imp"].steps
            assert row["step_imp"].steps <= row["area_imp"].steps

    def test_totals(self, table2_result):
        totals = table2_result.totals()
        for config in TABLE2_CONFIGS:
            assert totals[config][0] == sum(
                table2_result.rows[n][config].rrams for n in SUBSET
            )

    def test_summary_statistics(self, table2_result):
        stats = summarize_table2(table2_result)
        d = stats.as_dict()
        assert set(d) == {
            "rram_imp_steps_vs_area",
            "rram_imp_steps_vs_depth",
            "rram_maj_rrams_vs_step",
            "rram_maj_steps_penalty_vs_step",
        }
        # Multi-objective can never be worse than area opt in steps on
        # these benchmarks (both were run to convergence).
        assert d["rram_imp_steps_vs_area"] >= 0

    def test_render_contains_rows_and_paper(self, table2_result):
        text = render_table2(table2_result)
        for name in SUBSET:
            assert name in text
        assert "(paper)" in text
        assert "SUM" in text

    def test_render_without_paper(self, table2_result):
        text = render_table2(table2_result, with_paper=False)
        assert "(paper)" not in text


class TestTable3:
    def test_bdd_rows(self, table3_bdd_result):
        for name in SUBSET:
            row = table3_bdd_result.rows[name]
            assert row.baseline_steps > 0
            assert row.mig_maj[1] < row.mig_imp[1]

    def test_bdd_ratios(self, table3_bdd_result):
        maj_ratio, imp_ratio = table3_bdd_result.step_ratios()
        assert maj_ratio > imp_ratio > 0

    def test_aig_rows(self, table3_aig_result):
        for name in SMALL_SUBSET:
            row = table3_aig_result.rows[name]
            assert row.baseline_steps > 0

    def test_aig_render(self, table3_aig_result):
        text = render_table3(table3_aig_result)
        assert "AIG [12]" in text
        assert "step ratios" in text

    def test_bdd_render(self, table3_bdd_result):
        text = render_table3(table3_bdd_result)
        assert "BDD [11]" in text
        assert "(paper)" in text

    def test_largest_function_ratio_helper(self, table3_bdd_result):
        # Works on whatever subset was run.
        ratio = largest_function_ratio(table3_bdd_result, names=SUBSET)
        assert ratio == pytest.approx(
            sum(table3_bdd_result.rows[n].baseline_steps for n in SUBSET)
            / sum(table3_bdd_result.rows[n].mig_maj[1] for n in SUBSET)
        )


class TestRenderSummary:
    def test_summary_render(self, table2_result):
        text = render_summary(summarize_table2(table2_result))
        assert "paper" in text
        assert "%" in text
