"""Property-based tests for the truth-table engine.

These also serve as machine-checked statements of the MIG axiom set Ω/Ψ
(paper Sec. II-B) at the semantic level: every graph rewrite the
optimizers perform is justified by one of these identities.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.truth import TruthTable, if_then_else, table_mask, ternary_majority

NUM_VARS = 4


def tables(num_vars: int = NUM_VARS):
    return st.integers(min_value=0, max_value=table_mask(num_vars)).map(
        lambda bits: TruthTable(num_vars, bits)
    )


@given(tables(), tables())
def test_de_morgan(a, b):
    assert ~(a & b) == (~a | ~b)
    assert ~(a | b) == (~a & ~b)


@given(tables(), tables(), tables())
def test_xor_associative(a, b, c):
    assert (a ^ b) ^ c == a ^ (b ^ c)


@given(tables())
def test_xor_self_inverse(a):
    assert a ^ a == TruthTable.constant(NUM_VARS, False)


@given(tables(), tables(), tables())
def test_majority_commutativity(a, b, c):
    """Ω.C — majority is fully symmetric."""
    m = ternary_majority
    assert m(a, b, c) == m(b, a, c) == m(c, b, a) == m(a, c, b)


@given(tables(), tables())
def test_majority_rule_equal_operands(a, z):
    """Ω.M — M(x, x, z) = x and M(x, !x, z) = z."""
    m = ternary_majority
    assert m(a, a, z) == a
    assert m(a, ~a, z) == z


@given(tables(), tables(), tables(), tables())
def test_majority_associativity(x, y, u, z):
    """Ω.A — M(x, u, M(y, u, z)) = M(z, u, M(y, u, x))."""
    m = ternary_majority
    assert m(x, u, m(y, u, z)) == m(z, u, m(y, u, x))


@given(tables(), tables(), tables(), tables(), tables())
@settings(max_examples=60)
def test_majority_distributivity(x, y, u, v, z):
    """Ω.D — M(x, y, M(u, v, z)) = M(M(x,y,u), M(x,y,v), z)."""
    m = ternary_majority
    assert m(x, y, m(u, v, z)) == m(m(x, y, u), m(x, y, v), z)


@given(tables(), tables(), tables())
def test_inverter_propagation(x, y, z):
    """Ω.I — M(!x, !y, !z) = !M(x, y, z)."""
    m = ternary_majority
    assert m(~x, ~y, ~z) == ~m(x, y, z)


@given(tables(), tables(), tables(), tables())
def test_complementary_associativity(x, u, y, z):
    """Ψ.C — M(x, u, M(y, !u, z)) = M(x, u, M(y, x, z))."""
    m = ternary_majority
    assert m(x, u, m(y, ~u, z)) == m(x, u, m(y, x, z))


@given(st.integers(0, NUM_VARS - 1), st.integers(0, NUM_VARS - 1), tables())
def test_relevance_on_projections(i, j, f):
    """Ψ.R at the variable level: inside z, x may be replaced by !y —
    checked by substituting variable i with the complement of j in a
    majority with projections."""
    if i == j:
        return
    x = TruthTable.variable(NUM_VARS, i)
    y = TruthTable.variable(NUM_VARS, j)
    m = ternary_majority
    # replace x's occurrences inside f via Shannon: f_sub = ITE(!y, f|x=1, f|x=0)
    substituted = if_then_else(~y, f.cofactor(i, True), f.cofactor(i, False))
    assert m(x, y, f) == m(x, y, substituted)


@given(tables(), st.integers(0, NUM_VARS - 1))
def test_cofactor_idempotent(f, i):
    assert f.cofactor(i, True).cofactor(i, True) == f.cofactor(i, True)


@given(tables(), st.integers(0, NUM_VARS - 1))
def test_shannon_identity(f, i):
    x = TruthTable.variable(NUM_VARS, i)
    assert (x & f.cofactor(i, True)) | (~x & f.cofactor(i, False)) == f


@given(tables())
def test_count_ones_complement(f):
    assert f.count_ones() + (~f).count_ones() == f.num_entries


@given(tables())
def test_extend_preserves_semantics(f):
    wider = f.extend(NUM_VARS + 2)
    for assignment in range(f.num_entries):
        assert wider.value_at(assignment) == f.value_at(assignment)
