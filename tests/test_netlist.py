"""Unit tests for the gate-level netlist IR."""

import pytest

from repro.network import GateType, Netlist, NetlistError, evaluate_gate_words
from repro.truth import TruthTable

from conftest import reference_full_adder_tables


class TestConstruction:
    def test_add_input_and_gate(self):
        n = Netlist("t")
        n.add_input("a")
        n.add_gate("g", GateType.NOT, ["a"])
        assert n.has_net("a")
        assert n.has_net("g")
        assert n.num_gates == 1

    def test_duplicate_net_rejected(self):
        n = Netlist()
        n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_input("a")
        n.add_gate("g", GateType.NOT, ["a"])
        with pytest.raises(NetlistError):
            n.add_gate("g", GateType.BUF, ["a"])

    def test_fixed_arity_enforced(self):
        n = Netlist()
        n.add_input("a")
        n.add_input("b")
        with pytest.raises(NetlistError):
            n.add_gate("g", GateType.NOT, ["a", "b"])
        with pytest.raises(NetlistError):
            n.add_gate("g", GateType.MAJ, ["a", "b"])

    def test_variadic_needs_operand(self):
        n = Netlist()
        with pytest.raises(NetlistError):
            n.add_gate("g", GateType.AND, [])

    def test_gate_lookup_missing(self):
        n = Netlist()
        with pytest.raises(NetlistError):
            n.gate("nope")

    def test_repr(self):
        n = Netlist("demo")
        n.add_input("a")
        assert "demo" in repr(n)


class TestValidation:
    def test_dangling_operand(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("g", GateType.AND, ["a", "ghost"])
        with pytest.raises(NetlistError):
            n.validate()

    def test_undriven_output(self):
        n = Netlist()
        n.set_output("ghost")
        with pytest.raises(NetlistError):
            n.validate()

    def test_cycle_detected(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("g1", GateType.AND, ["a", "g2"])
        n.add_gate("g2", GateType.AND, ["a", "g1"])
        with pytest.raises(NetlistError):
            n.validate()

    def test_topological_order(self, full_adder_netlist):
        order = [g.name for g in full_adder_netlist.topological_order()]
        assert order.index("axb") < order.index("sum")


class TestLevels:
    def test_levels_and_depth(self, full_adder_netlist):
        levels = full_adder_netlist.level_of()
        assert levels["a"] == 0
        assert levels["axb"] == 1
        assert levels["sum"] == 2
        assert full_adder_netlist.depth() == 2

    def test_depth_empty(self):
        assert Netlist().depth() == 0


class TestSimulation:
    def test_full_adder_exhaustive(self, full_adder_netlist):
        tables = full_adder_netlist.truth_tables()
        assert tables == reference_full_adder_tables()

    def test_simulate_single_vector(self, full_adder_netlist):
        out = full_adder_netlist.simulate({"a": True, "b": True, "cin": False})
        assert out["sum"] is False
        assert out["cout"] is True

    def test_missing_input_value(self, full_adder_netlist):
        with pytest.raises(NetlistError):
            full_adder_netlist.simulate({"a": True, "b": False})

    def test_all_gate_word_semantics(self):
        mask = 0b1111
        a, b = 0b1010, 0b1100
        assert evaluate_gate_words(GateType.AND, [a, b], mask) == 0b1000
        assert evaluate_gate_words(GateType.NAND, [a, b], mask) == 0b0111
        assert evaluate_gate_words(GateType.OR, [a, b], mask) == 0b1110
        assert evaluate_gate_words(GateType.NOR, [a, b], mask) == 0b0001
        assert evaluate_gate_words(GateType.XOR, [a, b], mask) == 0b0110
        assert evaluate_gate_words(GateType.XNOR, [a, b], mask) == 0b1001
        assert evaluate_gate_words(GateType.NOT, [a], mask) == 0b0101
        assert evaluate_gate_words(GateType.BUF, [a], mask) == a
        assert evaluate_gate_words(GateType.CONST0, [], mask) == 0
        assert evaluate_gate_words(GateType.CONST1, [], mask) == mask

    def test_maj_and_mux_words(self):
        mask = 0xFF
        a, b, c = 0xAA, 0xCC, 0xF0
        maj = evaluate_gate_words(GateType.MAJ, [a, b, c], mask)
        assert maj == (a & b) | (a & c) | (b & c)
        mux = evaluate_gate_words(GateType.MUX, [a, b, c], mask)
        assert mux == (a & b) | (~a & c & mask)

    def test_nary_gates(self):
        n = Netlist()
        for name in "abcd":
            n.add_input(name)
        n.add_gate("g", GateType.AND, ["a", "b", "c", "d"])
        n.set_output("g")
        (table,) = n.truth_tables()
        assert table.count_ones() == 1
        assert table.value_at(0b1111)

    def test_refuses_huge_exhaustive(self):
        n = Netlist()
        for i in range(21):
            n.add_input(f"x{i}")
        n.add_gate("g", GateType.OR, [f"x{i}" for i in range(21)])
        n.set_output("g")
        with pytest.raises(NetlistError):
            n.truth_tables()

    def test_duplicate_outputs_allowed(self, full_adder_netlist):
        full_adder_netlist.set_output("sum")
        tables = full_adder_netlist.truth_tables()
        assert tables[0] == tables[2]


class TestConeExtraction:
    def test_cone_preserves_function(self, full_adder_netlist):
        cone = full_adder_netlist.extract_output_cone(1, "cout_only")
        assert cone.outputs == ["cout"]
        assert cone.truth_tables() == [full_adder_netlist.truth_tables()[1]]

    def test_cone_drops_unrelated_gates(self, full_adder_netlist):
        cone = full_adder_netlist.extract_output_cone(1)
        assert cone.num_gates == 1  # only the MAJ gate

    def test_cone_keeps_interface(self, full_adder_netlist):
        cone = full_adder_netlist.extract_output_cone(1)
        assert cone.inputs == full_adder_netlist.inputs

    def test_stats(self, full_adder_netlist):
        stats = full_adder_netlist.stats()
        assert stats == {"inputs": 3, "outputs": 2, "gates": 3, "depth": 2}
