"""Property-based tests: random MIGs hammered with random rewrites.

Every transformation in :mod:`repro.mig.rewrite` and every optimization
pass must preserve the Boolean function and the structural invariants,
whatever graph they are applied to.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig import (
    EquivalenceGuard,
    Mig,
    Realization,
    eliminate,
    inverter_propagation_pass,
    node_levels,
    optimize_area,
    optimize_depth,
    optimize_rram,
    optimize_steps,
    push_up,
    reshape,
    signal_node,
    signal_not,
)
from repro.mig.rewrite import (
    apply_associativity,
    apply_complementary_associativity,
    apply_distributivity_lr,
    apply_distributivity_rl,
    apply_inverter_propagation,
    apply_relevance,
)


def random_mig(seed: int, num_pis: int = 5, num_gates: int = 12) -> Mig:
    """A deterministic random MIG with complemented edges and fanout."""
    rng = random.Random(seed)
    mig = Mig(f"rand{seed}")
    signals = [mig.add_pi() for _ in range(num_pis)] + [0]
    for _ in range(num_gates):
        picks = []
        while len(picks) < 3:
            s = signals[rng.randrange(len(signals))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        signals.append(mig.make_maj(*picks))
    # Outputs: a few of the most recent signals.
    for _ in range(3):
        s = signals[rng.randrange(len(signals) // 2, len(signals))]
        if rng.random() < 0.3:
            s = signal_not(s)
        mig.add_po(s)
    return mig


REWRITES = [
    lambda mig, node, levels: apply_distributivity_rl(mig, node),
    lambda mig, node, levels: apply_distributivity_rl(mig, node, force=True),
    apply_distributivity_lr,
    apply_associativity,
    lambda mig, node, levels: apply_associativity(
        mig, node, levels, allow_neutral=True
    ),
    apply_complementary_associativity,
    lambda mig, node, levels: apply_inverter_propagation(mig, node),
    apply_relevance,
]


@given(st.integers(0, 10_000), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_random_rewrites_preserve_function(seed, rewrite_seed):
    mig = random_mig(seed)
    guard = EquivalenceGuard(mig)
    rng = random.Random(rewrite_seed)
    for _ in range(12):
        nodes = mig.reachable_nodes()
        if not nodes:
            break
        node = nodes[rng.randrange(len(nodes))]
        rewrite = REWRITES[rng.randrange(len(REWRITES))]
        levels = node_levels(mig)
        rewrite(mig, node, levels)
    guard.verify_or_raise()
    mig.check_invariants()


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_eliminate_never_grows(seed):
    mig = random_mig(seed, num_gates=16)
    guard = EquivalenceGuard(mig)
    before = mig.num_gates()
    eliminate(mig)
    guard.verify_or_raise()
    assert mig.num_gates() <= before


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_push_up_never_deepens(seed):
    from repro.mig import level_stats

    mig = random_mig(seed, num_gates=16)
    guard = EquivalenceGuard(mig)
    before = level_stats(mig).depth
    push_up(mig)
    guard.verify_or_raise()
    assert level_stats(mig).depth <= before


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_reshape_preserves_function(seed):
    mig = random_mig(seed, num_gates=16)
    guard = EquivalenceGuard(mig)
    reshape(mig, variant=seed % 2)
    guard.verify_or_raise()
    mig.check_invariants()


@given(st.integers(0, 10_000), st.sampled_from(list(Realization)))
@settings(max_examples=15, deadline=None)
def test_inverter_pass_preserves_function(seed, realization):
    mig = random_mig(seed, num_gates=16)
    guard = EquivalenceGuard(mig)
    inverter_propagation_pass(mig, realization)
    guard.verify_or_raise()
    mig.check_invariants()


@given(
    st.integers(0, 2_000),
    st.sampled_from(["area", "depth", "rram", "steps"]),
)
@settings(max_examples=16, deadline=None)
def test_full_algorithms_preserve_function(seed, algorithm):
    from repro.mig import ALGORITHMS

    mig = random_mig(seed, num_gates=14)
    guard = EquivalenceGuard(mig)
    optimizer = ALGORITHMS[algorithm]
    if algorithm in ("rram", "steps"):
        optimizer(mig, Realization.MAJ, 6)
    else:
        optimizer(mig, 6)
    guard.verify_or_raise()
    mig.check_invariants()


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_clone_equivalence(seed):
    mig = random_mig(seed)
    clone = mig.clone()
    assert clone.truth_tables() == mig.truth_tables()
