"""Tests for the benchmark suite: builders, generator, suite, paperdata."""

import pytest

from repro.benchmarks import (
    ALL_BENCHMARKS,
    LARGE_BENCHMARKS,
    SMALL_BENCHMARKS,
    SyntheticSpec,
    benchmark,
    builders,
    large_names,
    load_mig,
    load_netlist,
    paperdata,
    small_names,
    synthesize,
)
from repro.truth import (
    con1_style_function,
    count_ones_function,
    multiplexer_function,
    parity_function,
    symmetric_band_function,
)


class TestBuilders:
    def test_parity_netlist(self):
        assert builders.parity_netlist(6).truth_tables() == parity_function(6)

    def test_count_ones_netlist(self):
        got = builders.count_ones_netlist(7, 3).truth_tables()
        assert got == count_ones_function(7, 3)

    def test_symmetric_band_netlist(self):
        got = builders.symmetric_band_netlist(8, 2, 5).truth_tables()
        assert got == symmetric_band_function(8, 2, 5)

    def test_mux_netlist(self):
        got = builders.mux_netlist(3).truth_tables()
        assert got == multiplexer_function(3)

    def test_mux_with_enable(self):
        n = builders.mux_netlist(2, with_enable=True)
        assert len(n.inputs) == 7
        (table,) = n.truth_tables()
        # enable low forces 0.
        for assignment in range(1 << 7):
            if not (assignment >> 6) & 1:
                assert not table.value_at(assignment)

    def test_adder_netlist(self):
        from repro.truth import adder_function

        assert builders.adder_netlist(3).truth_tables() == adder_function(3)

    def test_con1_netlist(self):
        assert builders.con1_style_netlist().truth_tables() == con1_style_function()

    def test_squarer_plus(self):
        n = builders.squarer_plus_netlist()
        tables = n.truth_tables()
        for x in range(32):
            for y in range(4):
                assignment = x | (y << 5)
                value = sum(
                    1 << b for b in range(10) if tables[b].value_at(assignment)
                )
                assert value == x * x + y

    def test_alu_add_op(self):
        n = builders.alu_netlist()
        # op=0 (add), en=1, inv=0: f = a + b + cin (mod 16), cout.
        tables = n.truth_tables()
        for a in (0, 3, 9, 15):
            for b in (0, 5, 15):
                for cin in (0, 1):
                    assignment = a | (b << 4) | (cin << 11) | (1 << 12)
                    total = a + b + cin
                    f = sum(
                        1 << i for i in range(4)
                        if tables[i].value_at(assignment)
                    )
                    cout = tables[4].value_at(assignment)
                    assert f == total & 0xF
                    assert cout == (total > 15)

    def test_alu_logic_ops(self):
        n = builders.alu_netlist()
        tables = n.truth_tables()
        a, b = 0b1100, 0b1010
        for op, expected in ((2, a & b), (3, a | b), (4, a ^ b)):
            assignment = a | (b << 4) | (op << 8) | (1 << 12)
            f = sum(
                1 << i for i in range(4) if tables[i].value_at(assignment)
            )
            assert f == expected, op

    def test_t481_style(self):
        n = builders.t481_style_netlist()
        (table,) = n.truth_tables()
        for assignment in (0, 0xFFFF, 0x1234, 0xBEEF):
            groups = []
            for g in range(4):
                a, b, c, d = (
                    bool((assignment >> (4 * g + k)) & 1) for k in range(4)
                )
                groups.append((a and b) or (c != d))
            assert table.value_at(assignment) == (sum(groups) % 2 == 1)

    def test_count_compare(self):
        n = builders.count_compare_netlist(8, 4)
        (table,) = n.truth_tables()
        for assignment in range(256):
            left = bin(assignment & 0xF).count("1")
            right = bin(assignment >> 4).count("1")
            assert table.value_at(assignment) == (left > right)


class TestGenerator:
    def test_deterministic(self):
        spec = SyntheticSpec("g", 12, 4, 100, seed=42)
        a, b = spec.build(), spec.build()
        assert a.truth_tables() == b.truth_tables()
        assert [g.name for g in a.gates()] == [g.name for g in b.gates()]

    def test_seed_changes_circuit(self):
        a = SyntheticSpec("g", 12, 4, 100, seed=1).build()
        b = SyntheticSpec("g", 12, 4, 100, seed=2).build()
        assert a.truth_tables() != b.truth_tables()

    def test_interface(self):
        n = SyntheticSpec("g", 17, 6, 150, seed=9).build()
        assert len(n.inputs) == 17
        assert len(n.outputs) == 6

    def test_every_input_consumed(self):
        n = SyntheticSpec("g", 15, 5, 120, seed=3).build()
        used = set()
        for gate in n.gates():
            used.update(gate.operands)
        assert set(n.inputs) <= used

    def test_mostly_live(self):
        from repro.mig import mig_from_netlist

        spec = SyntheticSpec("g", 20, 10, 400, seed=5)
        n = spec.build()
        mig = mig_from_netlist(n)
        # Live MIG size must track the requested gate count (XOR/MUX
        # lowering adds nodes; dead logic would shrink it drastically).
        assert mig.num_gates() > spec.num_gates * 0.6

    def test_depth_near_target(self):
        n = SyntheticSpec("g", 20, 10, 300, seed=7, target_depth=10).build()
        assert 10 <= n.depth() <= 30

    def test_few_outputs_funnel(self):
        n = SyntheticSpec("g", 30, 1, 250, seed=11).build()
        assert len(n.outputs) == 1
        from repro.mig import mig_from_netlist

        assert mig_from_netlist(n).num_gates() > 100

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            synthesize(SyntheticSpec("g", 1, 1, 10, seed=0))
        with pytest.raises(ValueError):
            synthesize(SyntheticSpec("g", 4, 0, 10, seed=0))


class TestSuite:
    def test_counts(self):
        assert len(LARGE_BENCHMARKS) == 25
        assert len(SMALL_BENCHMARKS) == 25
        assert len(ALL_BENCHMARKS) == 50

    def test_table_order(self):
        assert large_names()[0] == "5xp1"
        assert large_names()[-1] == "x4"
        assert small_names()[0] == "9sym_d"
        assert small_names()[-1] == "xor5_d"

    @pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
    def test_loads_with_declared_interface(self, name):
        spec = benchmark(name)
        netlist = load_netlist(name)
        assert len(netlist.inputs) == spec.num_inputs
        assert len(netlist.outputs) == spec.num_outputs

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            benchmark("nonesuch")

    def test_load_mig_is_fresh(self):
        a = load_mig("xor5_d")
        b = load_mig("xor5_d")
        assert a is not b

    def test_exact_benchmarks_match_reference(self):
        assert load_netlist("parity").truth_tables() == parity_function(16)
        assert (
            load_netlist("9sym_d").truth_tables()
            == symmetric_band_function(9, 3, 6)
        )
        assert load_netlist("xor5_d").truth_tables() == parity_function(5)

    def test_rd_single_outputs(self):
        full = count_ones_function(5, 3)
        for bit, name in enumerate(["rd53f1", "rd53f2", "rd53f3"]):
            assert load_netlist(name).truth_tables() == [full[bit]]

    def test_paper_inputs_match_specs(self):
        for name, inputs in paperdata.TABLE2_INPUTS.items():
            assert benchmark(name).num_inputs == inputs, name


class TestPaperData:
    def test_table2_totals_consistent(self):
        for config in paperdata.TABLE2_CONFIGS:
            r_total = sum(
                row[config][0] for row in paperdata.TABLE2.values()
            )
            s_total = sum(
                row[config][1] for row in paperdata.TABLE2.values()
            )
            expected_r, expected_s = paperdata.TABLE2_TOTALS[config]
            assert r_total == expected_r, config
            assert s_total == expected_s, config

    def test_table3_bdd_totals_consistent(self):
        r_total = sum(v[0] for v in paperdata.TABLE3_BDD.values())
        s_total = sum(v[1] for v in paperdata.TABLE3_BDD.values())
        assert (r_total, s_total) == paperdata.TABLE3_BDD_TOTALS

    def test_table3_aig_totals_consistent(self):
        s_total = sum(v[0] for v in paperdata.TABLE3_AIG.values())
        imp_r = sum(v[1][0] for v in paperdata.TABLE3_AIG.values())
        imp_s = sum(v[1][1] for v in paperdata.TABLE3_AIG.values())
        maj_r = sum(v[2][0] for v in paperdata.TABLE3_AIG.values())
        maj_s = sum(v[2][1] for v in paperdata.TABLE3_AIG.values())
        exp_s, exp_imp, exp_maj = paperdata.TABLE3_AIG_TOTALS
        assert s_total == exp_s
        assert (imp_r, imp_s) == exp_imp
        assert (maj_r, maj_s) == exp_maj

    def test_table3_rows_mirror_table2(self):
        # Table III's MIG columns are Table II's multi-objective runs.
        for name, pair in paperdata.TABLE3_BDD.items():
            assert name in paperdata.TABLE2

    def test_headline_percentages_recoverable(self):
        totals = paperdata.TABLE2_TOTALS
        measured = 1 - totals["rram_imp"][1] / totals["area_imp"][1]
        assert abs(measured - paperdata.PAPER_CLAIMS["rram_imp_steps_vs_area"]) < 0.01
