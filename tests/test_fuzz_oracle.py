"""The differential oracle: clean circuits pass, planted bugs trip it."""

import pytest

from repro.fuzz import CHECKS, OracleFailure, case_circuit, check_case
from repro.mig import Mig, mig_from_netlist, signal_not
from repro.network import GateType, Netlist


def _xor_netlist():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_gate("f", GateType.XOR, [a, b])
    netlist.set_output("f")
    return netlist


class TestCleanCases:
    @pytest.mark.parametrize("kind", ("mig", "table", "gates"))
    def test_generated_cases_pass(self, kind):
        netlist, mig = case_circuit(kind, 42)
        assert check_case(netlist, mig, effort=3) is None

    def test_trivial_netlist_passes(self):
        assert check_case(_xor_netlist()) is None

    def test_mig_with_dead_nodes_passes(self):
        netlist, mig = case_circuit("mig", 4207)
        assert mig is not None
        assert check_case(netlist, mig, effort=3) is None


class TestPlantedBugs:
    def test_wrong_mig_is_caught(self):
        # Hand the oracle a MIG computing a *different* function than
        # the netlist: the very first cross-representation check, or at
        # the latest a flow check, must fire.
        netlist = _xor_netlist()
        wrong = Mig("t")
        a = wrong.add_pi("a")
        b = wrong.add_pi("b")
        wrong.add_po(wrong.make_and(a, b), "f")  # AND, not XOR
        failure = check_case(netlist, wrong)
        assert failure is not None
        assert isinstance(failure, OracleFailure)

    def test_failure_names_a_known_check(self):
        # An XNOR MIG against the XOR netlist: one complemented output.
        netlist = _xor_netlist()
        reference = mig_from_netlist(netlist)
        wrong = Mig("t")
        a = wrong.add_pi("a")
        b = wrong.add_pi("b")
        wrong.add_po(signal_not(wrong.make_xor(a, b)), "f")
        assert wrong.truth_tables() != reference.truth_tables()
        failure = check_case(netlist, wrong)
        assert failure is not None
        assert any(
            failure.check == c or failure.check.startswith(c.split("-")[0])
            for c in CHECKS
        )
        assert failure.describe()["detail"]


class TestCrossbarChecks:
    def test_crossbar_checks_registered(self):
        assert "crossbar-imp" in CHECKS
        assert "crossbar-maj" in CHECKS

    @pytest.mark.parametrize("kind", ("mig", "table", "gates"))
    def test_generated_cases_pass_crossbar_only(self, kind):
        netlist, mig = case_circuit(kind, 1337)
        failure = check_case(
            netlist, mig, effort=3, checks=["crossbar-imp", "crossbar-maj"]
        )
        assert failure is None

    def test_trivial_netlist_passes_crossbar(self):
        assert (
            check_case(_xor_netlist(), checks=["crossbar-imp", "crossbar-maj"])
            is None
        )

    def test_wide_netlists_skip_the_exhaustive_sweep(self):
        # The crossbar differential is exhaustive, so it is gated to
        # <= 8 inputs; a wider circuit must sail through untested
        # rather than hang.
        netlist = Netlist("wide")
        inputs = [netlist.add_input(f"x{i}") for i in range(10)]
        netlist.add_gate("f", GateType.AND, inputs)
        netlist.set_output("f")
        assert (
            check_case(netlist, checks=["crossbar-imp", "crossbar-maj"])
            is None
        )


class TestCheckFiltering:
    def test_subset_runs_only_requested_checks(self):
        netlist, mig = case_circuit("mig", 99)
        # A wrong MIG passes when only an unrelated check is enabled...
        wrong = Mig("w")
        a = wrong.add_pi("x0")
        wrong.add_po(a, "f0")
        assert (
            check_case(_xor_netlist(), checks=["plim-exec"]) is None
        )
        # ...and still fails when its own check is enabled.
        assert check_case(netlist, mig, checks=["xrep-mig"]) is None

    def test_prefix_matching_for_guarded_groups(self):
        # A crash inside the representation block is attributed to
        # "xrep"; re-running with the specific sub-check enabled must
        # still execute the block (prefix-tolerant matching).
        netlist = _xor_netlist()
        assert check_case(netlist, checks=["xrep-bdd"]) is None
        assert check_case(netlist, checks=["xrep"]) is None
