"""Transactional mutation engine tests.

The undo journal must restore graph content *exactly* (children,
fanout, strash, POs) under arbitrary interleavings of mutations with
nested checkpoint/commit/rollback, keep an attached CostView
consistent, and — switched against the legacy clone-based engine —
leave every optimizer flow bit-identical.  The NPN recipe cache behind
``synthesize_table`` is pinned to the packed simulation kernels.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig import (
    CostView,
    Mig,
    MigError,
    Realization,
    optimize_rram,
    optimize_steps,
    signal_not,
    synthesize_table,
    transaction_engine,
    transactions_enabled,
)
from repro.mig.rewrite import apply_inverter_propagation
from repro.sim import iter_assignment_chunks, simulate_mig_slices
from repro.truth import TruthTable


def build_random_mig(seed: int, num_pis: int = 4, num_gates: int = 10) -> Mig:
    rng = random.Random(seed)
    mig = Mig(f"tx{seed}")
    signals = [mig.add_pi() for _ in range(num_pis)] + [0]
    for _ in range(num_gates):
        picks = []
        while len(picks) < 3:
            s = signals[rng.randrange(len(signals))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        signals.append(mig.make_maj(*picks))
    for _ in range(3):
        s = signals[rng.randrange(len(signals) // 2, len(signals))]
        if rng.random() < 0.3:
            s = signal_not(s)
        mig.add_po(s)
    return mig


def capture(mig: Mig):
    """Content snapshot of every piece of mutable graph state.

    Fanout/strash are compared as dicts (content, not insertion order:
    rollback restores content only, and nothing bit-identity-relevant
    reads their order — ``clone`` included)."""
    return (
        list(mig._children),
        list(mig._is_pi),
        [dict(counts) for counts in mig._fanout],
        list(mig._pis),
        list(mig._pi_names),
        list(mig._pos),
        list(mig._po_names),
        dict(mig._strash),
    )


def random_mutation(mig: Mig, rng: random.Random) -> None:
    choice = rng.randrange(5)
    gates = [n for n in range(len(mig._children)) if mig.is_gate(n)]
    pool = [p << 1 for p in mig._pis] + [g << 1 for g in gates] + [0]
    if choice <= 1:
        picks = []
        while len(picks) < 3:
            s = pool[rng.randrange(len(pool))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        mig.make_maj(*picks)
    elif choice == 2 and gates:
        apply_inverter_propagation(mig, gates[rng.randrange(len(gates))])
    elif choice == 3 and mig.num_pos:
        index = rng.randrange(mig.num_pos)
        s = pool[rng.randrange(len(pool))]
        if rng.random() < 0.4:
            s = signal_not(s)
        mig.set_po(index, s)
    else:
        mig.sweep_dead()


class TestUndoJournal:
    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_transactions_restore_state_exactly(self, seed):
        rng = random.Random(seed)
        mig = build_random_mig(rng.randrange(10_000))
        view = CostView(mig)
        view.stats()
        stack = []
        for _ in range(rng.randrange(10, 40)):
            action = rng.random()
            if action < 0.25 and len(stack) < 4:
                stack.append((mig.checkpoint(), capture(mig)))
            elif action < 0.40 and stack:
                token, reference = stack.pop()
                mig.rollback(token)
                assert capture(mig) == reference
                view.assert_consistent()
            elif action < 0.50 and stack:
                token, _reference = stack.pop()
                mig.commit(token)
            else:
                random_mutation(mig, rng)
                if rng.random() < 0.3:
                    # Mid-transaction sync: forces the view to consume
                    # forward events whose nodes a later rollback pops.
                    view.stats()
        while stack:
            token, reference = stack.pop()
            mig.rollback(token)
            assert capture(mig) == reference
        view.assert_consistent()
        mig.check_invariants()

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_rollback_preserves_function(self, seed):
        rng = random.Random(seed)
        mig = build_random_mig(rng.randrange(10_000))
        tables_before = mig.truth_tables()
        token = mig.checkpoint()
        for _ in range(rng.randrange(1, 15)):
            random_mutation(mig, rng)
        mig.rollback(token)
        assert mig.truth_tables() == tables_before

    def test_nested_rollback_to_outer_checkpoint(self):
        mig = build_random_mig(3)
        outer_ref = capture(mig)
        outer = mig.checkpoint()
        mig.make_maj(mig._pis[0] << 1, mig._pis[1] << 1, 1)
        inner_ref = capture(mig)
        inner = mig.checkpoint()
        mig.make_maj(mig._pis[2] << 1, mig._pis[0] << 1, 0)
        mig.rollback(inner)
        assert capture(mig) == inner_ref
        mig.rollback(outer)
        assert capture(mig) == outer_ref
        assert not mig.in_transaction

    def test_commit_keeps_mutations(self):
        mig = build_random_mig(4)
        token = mig.checkpoint()
        s = mig.make_maj(mig._pis[0] << 1, mig._pis[1] << 1, 1)
        mig.set_po(0, s)
        mig.commit(token)
        assert mig.pos[0] == s
        assert not mig.in_transaction

    def test_wholesale_copy_rolls_back(self):
        mig = build_random_mig(5)
        reference = capture(mig)
        token = mig.checkpoint()
        mig.make_maj(mig._pis[0] << 1, mig._pis[1] << 1, 1)
        mig.compact()  # wholesale array swap inside the transaction
        random_mutation(mig, random.Random(9))
        mig.rollback(token)
        assert capture(mig) == reference

    def test_token_discipline(self):
        mig = build_random_mig(6)
        outer = mig.checkpoint()
        inner = mig.checkpoint()
        with pytest.raises(MigError):
            mig.rollback(outer)  # not innermost
        with pytest.raises(MigError):
            mig.commit(outer)
        mig.commit(inner)
        mig.commit(outer)
        with pytest.raises(MigError):
            mig.rollback(0)  # nothing open

    def test_interface_frozen_during_transaction(self):
        mig = build_random_mig(7)
        token = mig.checkpoint()
        with pytest.raises(MigError):
            mig.add_pi("late")
        with pytest.raises(MigError):
            mig.add_po(0, "late")
        mig.rollback(token)
        mig.add_pi("ok")  # allowed again once closed

    def test_counters_accumulate(self):
        mig = build_random_mig(8)
        assert mig.tx_checkpoints == 0
        token = mig.checkpoint()
        mig.make_maj(mig._pis[0] << 1, mig._pis[1] << 1, 0)
        mig.rollback(token)
        assert mig.tx_checkpoints == 1
        assert mig.tx_rollbacks == 1
        assert mig.tx_undo_replayed > 0


class TestCompact:
    def test_matches_legacy_clone_idiom(self):
        legacy = build_random_mig(11, num_gates=14)
        fresh = build_random_mig(11, num_gates=14)
        legacy.copy_from(legacy.clone())
        fresh.compact()
        assert legacy._children == fresh._children
        assert legacy._pos == fresh._pos
        assert legacy._strash == fresh._strash
        assert legacy._fanout == fresh._fanout

    def test_idempotent(self):
        mig = build_random_mig(12, num_gates=14)
        mig.compact()
        reference = capture(mig)
        mig.compact()
        assert capture(mig) == reference

    def test_drops_dead_nodes(self):
        mig = build_random_mig(13)
        mig.make_maj(mig._pis[0] << 1, mig._pis[1] << 1, 1)  # dead
        live = len(set(mig.reachable_nodes()))
        mig.compact()
        assert mig.num_gates() == live
        assert len(mig._children) == 1 + mig.num_pis + live

    def test_preserves_function(self):
        mig = build_random_mig(14)
        tables = mig.truth_tables()
        mig.compact()
        assert mig.truth_tables() == tables


class TestEngineEquivalence:
    @given(
        st.integers(0, 10_000),
        st.sampled_from(["steps", "rram"]),
        st.sampled_from(list(Realization)),
    )
    @settings(max_examples=12, deadline=None)
    def test_optimizers_bit_identical_between_engines(
        self, seed, flow, realization
    ):
        run = optimize_steps if flow == "steps" else optimize_rram
        with transaction_engine(True):
            mig_tx = build_random_mig(seed, num_pis=5, num_gates=14)
            result_tx = run(mig_tx, realization, effort=4)
        with transaction_engine(False):
            mig_legacy = build_random_mig(seed, num_pis=5, num_gates=14)
            result_legacy = run(mig_legacy, realization, effort=4)
        assert mig_tx._children == mig_legacy._children
        assert mig_tx._pos == mig_legacy._pos
        assert result_tx.final_size == result_legacy.final_size
        assert result_tx.final_depth == result_legacy.final_depth
        assert result_tx.history == result_legacy.history

    def test_switch_scoping(self):
        default = transactions_enabled()
        with transaction_engine(False):
            assert not transactions_enabled()
            with transaction_engine(True):
                assert transactions_enabled()
            assert not transactions_enabled()
        assert transactions_enabled() == default

    def test_profile_reports_transaction_counters(self):
        mig = build_random_mig(21, num_pis=5, num_gates=14)
        result = optimize_steps(mig, Realization.MAJ, effort=4)
        assert result.profile is not None
        for key in (
            "tx_checkpoints",
            "tx_rollbacks",
            "tx_undo_replayed",
            "strash_hits",
            "strash_misses",
        ):
            assert key in result.profile
        if transactions_enabled():
            assert result.profile["tx_checkpoints"] > 0


class TestStrashAndNpnCache:
    def test_strash_dedupes_isomorphic_gates(self):
        mig = Mig()
        a = mig.add_pi()
        b = mig.add_pi()
        c = mig.add_pi()
        first = mig.make_maj(a, b, c)
        misses = mig.strash_misses
        again = mig.make_maj(c, a, b)  # same triple, different order
        assert again == first
        assert mig.strash_hits >= 1
        assert mig.strash_misses == misses

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=100, deadline=None)
    def test_npn4_synthesis_matches_packed_kernels(self, bits):
        table = TruthTable(4, bits)
        mig = Mig()
        leaves = [mig.add_pi(f"x{i}") for i in range(4)]
        root = synthesize_table(mig, table, leaves)
        mig.add_po(root, "f")
        for chunk in iter_assignment_chunks(4):
            word = simulate_mig_slices(mig, chunk.slices, chunk.mask)[0]
            expected = (table.bits >> chunk.start) & chunk.mask
            assert word == expected

    def test_npn4_recipe_cache_hits(self):
        from repro.mig import resynth

        table = TruthTable(4, 0x1EE1)
        mig = Mig()
        leaves = [mig.add_pi(f"x{i}") for i in range(4)]
        first = synthesize_table(mig, table, leaves)
        size = len(resynth._NPN4_RECIPES)
        assert size > 0
        # Second build replays the cached recipe; strash folds it onto
        # the first construction entirely.
        misses = mig.strash_misses
        again = synthesize_table(mig, table, leaves)
        assert again == first
        assert mig.strash_misses == misses
        assert len(resynth._NPN4_RECIPES) == size
