"""Tests for the majority gadgets and the MIG → RRAM compiler."""

import pytest

from repro.mig import (
    CONST1,
    Mig,
    Realization,
    mig_from_netlist,
    mig_from_truth_tables,
    optimize_steps,
    signal_not,
)
from repro.rram import (
    IMP_GADGET_DEVICES,
    IMP_GADGET_STEPS,
    MAJ_GADGET_DEVICES,
    MAJ_GADGET_STEPS,
    compile_mig,
    run_program,
    standalone_majority_program,
    verification_vectors,
    verify_compiled,
    verify_compiled_or_raise,
)
from repro.truth import count_ones_function, parity_function


class TestGadgets:
    @pytest.mark.parametrize("realization", ["imp", "maj"])
    def test_computes_majority_exhaustively(self, realization):
        program = standalone_majority_program(realization)
        for assignment in range(8):
            inputs = [bool((assignment >> i) & 1) for i in range(3)]
            (out,) = run_program(program, inputs)
            assert out == (sum(inputs) >= 2), (realization, inputs)

    def test_paper_step_and_device_counts(self):
        imp = standalone_majority_program("imp")
        maj = standalone_majority_program("maj")
        assert imp.num_steps == IMP_GADGET_STEPS == 10
        assert imp.num_devices == IMP_GADGET_DEVICES == 6
        assert maj.num_steps == MAJ_GADGET_STEPS == 3
        assert maj.num_devices == MAJ_GADGET_DEVICES == 4

    def test_unknown_realization(self):
        with pytest.raises(ValueError):
            standalone_majority_program("qed")


def simple_mig():
    mig = Mig("simple")
    a, b, c, d = (mig.add_pi(n) for n in "abcd")
    inner = mig.make_maj(a, b, c)
    outer = mig.make_maj(inner, signal_not(d), a)
    mig.add_po(outer, "f")
    mig.add_po(inner, "g")
    return mig


class TestCompiler:
    @pytest.mark.parametrize("realization", list(Realization))
    def test_simple_circuit_executes_correctly(self, realization):
        mig = simple_mig()
        report = compile_mig(mig, realization)
        verify_compiled_or_raise(mig, report)

    @pytest.mark.parametrize("realization", list(Realization))
    def test_step_count_matches_table1(self, realization):
        mig = simple_mig()
        report = compile_mig(mig, realization)
        assert report.steps_match_model
        assert report.measured_steps == report.analytic.steps

    def test_multi_output_with_shared_logic(self):
        tables = count_ones_function(5, 3)
        mig = mig_from_truth_tables(tables, "rd53")
        for realization in Realization:
            report = compile_mig(mig, realization)
            assert report.steps_match_model
            verify_compiled_or_raise(mig, report)

    def test_optimized_circuit_still_correct(self):
        mig = mig_from_truth_tables(parity_function(6), "parity6")
        optimize_steps(mig, Realization.MAJ, effort=6)
        report = compile_mig(mig, Realization.MAJ)
        verify_compiled_or_raise(mig, report)
        assert report.steps_match_model

    def test_complemented_po(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_po(signal_not(mig.make_maj(a, b, c)))
        for realization in Realization:
            report = compile_mig(mig, realization)
            verify_compiled_or_raise(mig, report)
            assert report.steps_match_model

    def test_pi_directly_as_po(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        f = mig.make_maj(a, b, c)
        mig.add_po(f)
        mig.add_po(a)  # pass-through output
        report = compile_mig(mig, Realization.MAJ)
        verify_compiled_or_raise(mig, report)

    def test_constant_pos(self):
        from repro.mig import CONST0

        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_po(mig.make_maj(a, b, c))
        mig.add_po(CONST0)
        mig.add_po(CONST1)
        report = compile_mig(mig, Realization.MAJ)
        verify_compiled_or_raise(mig, report)

    def test_cross_level_value_lifetime(self):
        # A level-1 value consumed at level 3 must stay alive.
        mig = Mig()
        a, b, c, d, e = (mig.add_pi() for _ in range(5))
        l1 = mig.make_maj(a, b, c)
        l2 = mig.make_maj(l1, d, e)
        l3 = mig.make_maj(l2, l1, a)  # reuses l1 two levels up
        mig.add_po(l3)
        for realization in Realization:
            report = compile_mig(mig, realization)
            verify_compiled_or_raise(mig, report)

    def test_complemented_pi_edge(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        f = mig.make_maj(signal_not(a), b, c)
        mig.add_po(f)
        for realization in Realization:
            report = compile_mig(mig, realization)
            verify_compiled_or_raise(mig, report)
            # One complemented level: S = K*D + 1.
            assert (
                report.measured_steps
                == realization.steps_per_level + 1
            )

    def test_constant_gate_inputs(self):
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        f = mig.make_and(a, b)   # M(a, b, 0)
        g = mig.make_or(a, b)    # M(a, b, 1)
        mig.add_po(f)
        mig.add_po(g)
        for realization in Realization:
            report = compile_mig(mig, realization)
            verify_compiled_or_raise(mig, report)

    def test_device_reuse_bounded(self):
        # Devices must be recycled: far fewer than gates * K.
        tables = count_ones_function(7, 3)
        mig = mig_from_truth_tables(tables, "rd73")
        report = compile_mig(mig, Realization.MAJ)
        upper_bound_without_reuse = (
            mig.num_gates() * MAJ_GADGET_DEVICES + mig.num_pis + 8
        )
        assert report.measured_devices < upper_bound_without_reuse

    def test_verification_vectors_exhaustive_small(self):
        vectors = verification_vectors(3)
        assert len(vectors) == 8

    def test_verification_vectors_sampled_large(self):
        vectors = verification_vectors(20, samples=16)
        assert len(vectors) == 18  # corners + samples
        assert [False] * 20 in vectors
        assert [True] * 20 in vectors

    def test_verify_compiled_detects_corruption(self):
        mig = simple_mig()
        report = compile_mig(mig, Realization.MAJ)
        # Corrupt: swap output devices.
        devices = report.program.output_devices
        devices[0], devices[1] = devices[1], devices[0]
        assert not verify_compiled(mig, report)
