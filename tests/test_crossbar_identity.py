"""Bit-identity regression tests for crossbar-mapped programs.

Every program mapped onto an array must compute exactly what the
sequential program computes — on the clean array, under every fault
class after exact fault remapping, and through both executors (the
scalar device simulator in :mod:`repro.rram.array` and the bit-packed
kernels in :mod:`repro.sim`).  The small fuzz corpus keeps the sweep
exhaustive where the input count allows.
"""

import pytest

from repro.benchmarks import fuzz_corpus_names, load_netlist
from repro.crossbar import map_program
from repro.flows import placed_identical
from repro.mig import Realization, mig_from_netlist
from repro.rram import (
    FAULT_CLASSES,
    compile_mig,
    enumerate_fault_models,
    run_placed_program,
    run_program,
)

# A slice of the fuzz corpus that keeps the exhaustive sweeps quick while
# still covering PI counts from 5 to 8 and both shallow and deep programs.
CORPUS = ("con1f1", "rd53f2", "xor5_d", "rd73f1", "misex1")


def _compile(name, realization):
    netlist = load_netlist(name)
    mig = mig_from_netlist(netlist)
    return mig, compile_mig(mig, realization).program


def _vectors(num_inputs, limit=64):
    """Exhaustive assignments when small, a strided sample otherwise."""
    total = 1 << num_inputs
    stride = max(1, total // limit)
    for assignment in range(0, total, stride):
        yield [bool((assignment >> i) & 1) for i in range(num_inputs)]


@pytest.mark.parametrize("name", CORPUS)
@pytest.mark.parametrize("realization", list(Realization))
def test_packed_identity_on_clean_array(name, realization):
    mig, program = _compile(name, realization)
    placed = map_program(program)
    assert placed.num_parallel_steps <= program.num_steps
    assert placed_identical(program, placed)


@pytest.mark.parametrize("name", CORPUS[:3])
@pytest.mark.parametrize("realization", list(Realization))
def test_scalar_identity_on_clean_array(name, realization):
    mig, program = _compile(name, realization)
    placed = map_program(program)
    for vector in _vectors(mig.num_pis):
        assert run_placed_program(placed, vector) == run_program(
            program, vector
        )


@pytest.mark.parametrize("fault_class", FAULT_CLASSES)
def test_fault_models_survive_remapping(fault_class):
    """Remapped faults reproduce the sequential faulty outputs exactly."""
    mig, program = _compile("rd53f2", Realization.MAJ)
    placed = map_program(program)
    models = enumerate_fault_models(program, fault_class)
    assert models, fault_class
    vectors = list(_vectors(mig.num_pis, limit=8))
    checked = 0
    for model in models[:: max(1, len(models) // 12)]:
        remapped = placed.remap_fault_model(model)
        for vector in vectors:
            assert run_placed_program(
                placed, vector, fault_model=remapped
            ) == run_program(program, vector, fault_model=model), model.label
        checked += 1
    assert checked >= 2


@pytest.mark.parametrize("realization", list(Realization))
def test_fault_remapping_imp_and_maj_spot(realization):
    """One sampled model per class, both realizations, second benchmark."""
    mig, program = _compile("con1f1", realization)
    placed = map_program(program)
    vectors = list(_vectors(mig.num_pis, limit=16))
    for fault_class in FAULT_CLASSES:
        models = enumerate_fault_models(program, fault_class)
        if not models:
            continue
        model = models[len(models) // 2]
        remapped = placed.remap_fault_model(model)
        for vector in vectors:
            assert run_placed_program(
                placed, vector, fault_model=remapped
            ) == run_program(program, vector, fault_model=model)


def test_identity_holds_on_explicit_geometry():
    """An explicitly requested array still computes identically."""
    mig, program = _compile("xor5_d", Realization.IMP)
    # One wordline per block is always legal, so this never needs the
    # auto-fit growth loop — the requested geometry is used verbatim.
    width = max(len(block.devices) for block in program.blocks)
    height = program.num_devices
    placed = map_program(program, width, height)
    assert placed.width == width and placed.height == height
    assert placed_identical(program, placed)
