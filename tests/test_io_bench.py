"""Tests for the ISCAS89 ``.bench`` reader/writer."""

import pytest

from repro.io import BenchFormatError, parse_bench, write_bench
from repro.network import GateType

SIMPLE = """
# a comment
INPUT(a)
INPUT(b)
OUTPUT(f)
f = NAND(a, b)
"""


def test_parse_simple():
    n = parse_bench(SIMPLE)
    assert n.inputs == ["a", "b"]
    assert n.outputs == ["f"]
    assert n.gate("f").gate_type is GateType.NAND


def test_parse_all_gate_keywords():
    text = "\n".join(
        ["INPUT(a)", "INPUT(b)", "INPUT(c)", "OUTPUT(z)"]
        + [
            "g1 = AND(a, b)",
            "g2 = OR(a, b)",
            "g3 = NOR(a, b)",
            "g4 = XOR(a, b)",
            "g5 = XNOR(a, b)",
            "g6 = NOT(a)",
            "g7 = BUFF(b)",
            "g8 = MAJ(a, b, c)",
            "g9 = MUX(a, b, c)",
            "z = AND(g1, g2, g3, g4, g5, g6, g7, g8, g9)",
        ]
    )
    n = parse_bench(text)
    assert n.num_gates == 10


def test_case_insensitive_keywords():
    n = parse_bench("input(a)\noutput(f)\nf = not(a)")
    assert n.inputs == ["a"]
    assert n.gate("f").gate_type is GateType.NOT


def test_dff_combinational_profile():
    text = """
INPUT(x)
OUTPUT(q)
q = DFF(nq)
nq = NOT(q)
"""
    n = parse_bench(text)
    # q becomes a pseudo-input; nq a pseudo-output.
    assert "q" in n.inputs
    assert "nq" in n.outputs
    n.validate()


def test_unknown_gate_rejected():
    with pytest.raises(BenchFormatError):
        parse_bench("INPUT(a)\nf = FROB(a)\nOUTPUT(f)")


def test_unparsable_line_rejected():
    with pytest.raises(BenchFormatError):
        parse_bench("INPUT(a)\nthis is not bench\n")


def test_dff_arity_checked():
    with pytest.raises(BenchFormatError):
        parse_bench("INPUT(a)\nq = DFF(a, a)")


def test_undefined_operand_rejected():
    with pytest.raises(BenchFormatError):
        parse_bench("INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)")


def test_roundtrip(full_adder_netlist):
    text = write_bench(full_adder_netlist)
    parsed = parse_bench(text)
    assert parsed.truth_tables() == full_adder_netlist.truth_tables()


def test_roundtrip_preserves_interface(full_adder_netlist):
    parsed = parse_bench(write_bench(full_adder_netlist))
    assert parsed.inputs == full_adder_netlist.inputs
    assert parsed.outputs == full_adder_netlist.outputs


def test_write_rejects_constants():
    from repro.network import Netlist

    n = Netlist()
    n.add_gate("k", GateType.CONST0, [])
    n.set_output("k")
    with pytest.raises(BenchFormatError):
        write_bench(n)


def test_file_roundtrip(tmp_path, full_adder_netlist):
    from repro.io import read_bench, save_bench

    path = tmp_path / "fa.bench"
    save_bench(full_adder_netlist, str(path))
    loaded = read_bench(str(path))
    assert loaded.truth_tables() == full_adder_netlist.truth_tables()
