"""Tests for the four optimization algorithms (paper Alg. 1–4)."""

import pytest

from repro.mig import (
    ALGORITHMS,
    EquivalenceGuard,
    Realization,
    eliminate,
    level_stats,
    mig_from_truth_tables,
    optimize_area,
    optimize_depth,
    optimize_rram,
    optimize_steps,
    push_up,
    rram_costs,
)
from repro.truth import count_ones_function, nine_sym_function, parity_function


@pytest.fixture(scope="module")
def sym9_tables():
    return nine_sym_function()


def fresh(tables, name="t"):
    return mig_from_truth_tables(tables, name)


class TestOptimizeArea:
    def test_preserves_function(self, sym9_tables):
        mig = fresh(sym9_tables)
        guard = EquivalenceGuard(mig)
        optimize_area(mig, effort=8)
        guard.verify_or_raise()

    def test_never_grows(self, sym9_tables):
        mig = fresh(sym9_tables)
        result = optimize_area(mig, effort=8)
        assert result.final_size <= result.initial_size
        assert mig.num_gates() == result.final_size

    def test_result_bookkeeping(self, sym9_tables):
        mig = fresh(sym9_tables)
        result = optimize_area(mig, effort=5)
        assert result.algorithm == "area"
        assert 1 <= result.cycles_run <= 5
        assert len(result.history) == result.cycles_run
        assert result.size_reduction == result.initial_size - result.final_size

    def test_zero_effort_is_identity_except_trailing_eliminate(
        self, sym9_tables
    ):
        mig = fresh(sym9_tables)
        before = mig.num_gates()
        result = optimize_area(mig, effort=0)
        assert result.cycles_run == 0
        assert mig.num_gates() <= before


class TestOptimizeDepth:
    def test_preserves_function(self, sym9_tables):
        mig = fresh(sym9_tables)
        guard = EquivalenceGuard(mig)
        optimize_depth(mig, effort=8)
        guard.verify_or_raise()

    def test_never_deepens(self, sym9_tables):
        mig = fresh(sym9_tables)
        result = optimize_depth(mig, effort=8)
        assert result.final_depth <= result.initial_depth

    def test_reduces_depth_on_skewed_input(self):
        # A linear AND chain has massive slack: depth must drop.
        from repro.mig import Mig

        mig = Mig("chain")
        signals = [mig.add_pi() for _ in range(8)]
        acc = signals[0]
        for s in signals[1:]:
            acc = mig.make_and(acc, s)
        mig.add_po(acc)
        guard = EquivalenceGuard(mig)
        result = optimize_depth(mig, effort=12)
        guard.verify_or_raise()
        assert result.final_depth < result.initial_depth


class TestOptimizeRram:
    @pytest.mark.parametrize("realization", list(Realization))
    def test_preserves_function(self, sym9_tables, realization):
        mig = fresh(sym9_tables)
        guard = EquivalenceGuard(mig)
        optimize_rram(mig, realization, effort=8)
        guard.verify_or_raise()

    def test_budgeted_trade_off_contract(self, sym9_tables):
        """Alg. 3 guarantees: no more RRAMs than the step optimizer,
        and steps within the realization's budget factor of it."""
        probe = fresh(sym9_tables)
        optimize_steps(probe, Realization.MAJ, effort=16)
        star = rram_costs(probe, Realization.MAJ)
        mig = fresh(sym9_tables)
        optimize_rram(mig, Realization.MAJ, effort=16)
        after = rram_costs(mig, Realization.MAJ)
        assert after.rrams <= star.rrams
        assert after.steps <= int(star.steps * 1.45) + 1


class TestOptimizeSteps:
    @pytest.mark.parametrize("realization", list(Realization))
    def test_preserves_function(self, sym9_tables, realization):
        mig = fresh(sym9_tables)
        guard = EquivalenceGuard(mig)
        optimize_steps(mig, realization, effort=8)
        guard.verify_or_raise()

    def test_steps_never_increase(self, sym9_tables):
        for realization in Realization:
            mig = fresh(sym9_tables)
            before = rram_costs(mig, realization).steps
            optimize_steps(mig, realization, effort=8)
            assert rram_costs(mig, realization).steps <= before

    def test_improves_steps_on_symmetric_function(self, sym9_tables):
        mig = fresh(sym9_tables)
        before = rram_costs(mig, Realization.MAJ).steps
        optimize_steps(mig, Realization.MAJ, effort=10)
        assert rram_costs(mig, Realization.MAJ).steps < before


class TestCrossAlgorithmShape:
    """The orderings the paper's Table II establishes."""

    @pytest.fixture(scope="class")
    def results(self, sym9_tables):
        outcome = {}
        for algorithm in ("area", "depth", "rram", "steps"):
            mig = fresh(sym9_tables)
            optimizer = ALGORITHMS[algorithm]
            if algorithm in ("rram", "steps"):
                optimizer(mig, Realization.MAJ, 10)
            else:
                optimizer(mig, 10)
            outcome[algorithm] = {
                real: rram_costs(mig, real) for real in Realization
            }
        return outcome

    def test_maj_always_cheaper_than_imp(self, results):
        for algorithm, costs in results.items():
            assert costs[Realization.MAJ].steps < costs[Realization.IMP].steps
            assert costs[Realization.MAJ].rrams <= costs[Realization.IMP].rrams

    def test_step_opt_minimizes_steps(self, results):
        steps = {
            algorithm: costs[Realization.MAJ].steps
            for algorithm, costs in results.items()
        }
        assert steps["steps"] <= steps["area"]
        assert steps["steps"] <= steps["depth"]

    def test_depth_opt_minimizes_depth(self, results):
        depths = {
            algorithm: costs[Realization.MAJ].depth
            for algorithm, costs in results.items()
        }
        assert depths["depth"] <= depths["area"]


class TestPasses:
    def test_eliminate_merges_distributivity_redex(self):
        from repro.mig import Mig

        mig = Mig()
        x, y, u, v, z = (mig.add_pi() for _ in range(5))
        top = mig.make_maj(mig.make_maj(x, y, u), mig.make_maj(x, y, v), z)
        mig.add_po(top)
        assert mig.num_gates() == 3
        guard = EquivalenceGuard(mig)
        assert eliminate(mig)
        guard.verify_or_raise()
        assert mig.num_gates() == 2

    def test_push_up_balances_chain(self):
        from repro.mig import Mig

        mig = Mig("chain")
        signals = [mig.add_pi() for _ in range(8)]
        acc = signals[0]
        for s in signals[1:]:
            acc = mig.make_or(acc, s)
        mig.add_po(acc)
        before = level_stats(mig).depth
        push_up(mig)
        assert level_stats(mig).depth < before

    def test_algorithms_registry(self):
        assert set(ALGORITHMS) == {"area", "depth", "rram", "steps"}


class TestParityBenchmark:
    def test_parity_optimization_all_algorithms(self):
        tables = parity_function(8)
        for algorithm, optimizer in ALGORITHMS.items():
            mig = fresh(tables, f"parity-{algorithm}")
            guard = EquivalenceGuard(mig)
            if algorithm in ("rram", "steps"):
                optimizer(mig, Realization.MAJ, 6)
            else:
                optimizer(mig, 6)
            guard.verify_or_raise()

    def test_rd53_multi_output(self):
        tables = count_ones_function(5, 3)
        mig = fresh(tables, "rd53")
        guard = EquivalenceGuard(mig)
        optimize_steps(mig, Realization.MAJ, 8)
        guard.verify_or_raise()
