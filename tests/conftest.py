"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.mig import Mig
from repro.network import GateType, Netlist
from repro.truth import TruthTable


@pytest.fixture
def maj3_mig() -> Mig:
    """A single majority gate M(a, b, c)."""
    mig = Mig("maj3")
    a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
    mig.add_po(mig.make_maj(a, b, c), "f")
    return mig


@pytest.fixture
def full_adder_netlist() -> Netlist:
    """1-bit full adder: (a, b, cin) -> (sum, cout)."""
    netlist = Netlist("fa")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    cin = netlist.add_input("cin")
    netlist.add_gate("axb", GateType.XOR, [a, b])
    netlist.add_gate("sum", GateType.XOR, ["axb", cin])
    netlist.add_gate("cout", GateType.MAJ, [a, b, cin])
    netlist.set_output("sum")
    netlist.set_output("cout")
    return netlist


def reference_full_adder_tables():
    """Reference truth tables of the full adder (sum, cout)."""
    s = TruthTable.from_function(3, lambda i: (i[0] + i[1] + i[2]) % 2 == 1)
    c = TruthTable.from_function(3, lambda i: (i[0] + i[1] + i[2]) >= 2)
    return [s, c]
