"""Round-trip every bundled benchmark through every writable format.

For each of the 50 bundled benchmarks: write → parse → check netlist
equivalence against the original (exhaustively for small interfaces,
random-vector miter for large ones).  Formats that genuinely cannot
express a circuit must refuse loudly rather than emit something wrong:
``.bench`` has no constant gates, and PLA export enumerates the truth
table so it is only exercised for small input counts.
"""

import pytest

from repro.benchmarks import ALL_BENCHMARKS, benchmark, load_netlist
from repro.io import (
    BenchFormatError,
    parse_bench,
    parse_blif,
    parse_verilog,
    pla_to_netlist,
    pla_truth_tables,
    tables_to_pla,
    write_bench,
    write_blif,
    write_pla,
    parse_pla,
    write_verilog,
)
from repro.network import GateType, netlists_equivalent

ALL_NAMES = sorted(ALL_BENCHMARKS)
PLA_NAMES = [name for name in ALL_NAMES if benchmark(name).num_inputs <= 10]


def _has_constants(netlist):
    return any(
        gate.gate_type in (GateType.CONST0, GateType.CONST1)
        for gate in netlist.gates()
    )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_blif_roundtrip(name):
    original = load_netlist(name)
    back = parse_blif(write_blif(original))
    assert back.inputs == original.inputs
    assert len(back.outputs) == len(original.outputs)
    assert netlists_equivalent(original, back)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_bench_roundtrip(name):
    original = load_netlist(name)
    if _has_constants(original):
        # .bench has no constant gates; the writer must refuse, not
        # silently drop or misencode them.
        with pytest.raises(BenchFormatError):
            write_bench(original)
        return
    back = parse_bench(write_bench(original))
    assert netlists_equivalent(original, back)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_verilog_roundtrip(name):
    original = load_netlist(name)
    back = parse_verilog(write_verilog(original))
    assert netlists_equivalent(original, back)


@pytest.mark.parametrize("name", PLA_NAMES)
def test_pla_roundtrip(name):
    original = load_netlist(name)
    tables = original.truth_tables()
    cover = tables_to_pla(
        tables,
        name=name,
        input_labels=original.inputs,
        output_labels=[f"f{i}" for i in range(len(original.outputs))],
    )
    back = parse_pla(write_pla(cover))
    assert pla_truth_tables(back) == tables
    assert netlists_equivalent(original, pla_to_netlist(back))


def test_verilog_digit_leading_module_name():
    # Benchmark names like "5xp1" are not legal Verilog identifiers;
    # the writer must emit a parseable module header anyway.
    original = load_netlist("5xp1")
    text = write_verilog(original)
    assert "module 5xp1" not in text
    assert netlists_equivalent(original, parse_verilog(text))
