"""Property tests for crossbar placement and scheduling legality.

Random MIGs are compiled and mapped; the properties pin down the
mapper's contract: every live register gets a unique in-bounds
``(row, col)`` cell, no parallel step violates the wordline sense-path
rule, and the row-parallel schedule never exceeds the sequential step
count.  The from-scratch auditors in :mod:`repro.crossbar.model` —
not the mapper's own incremental bookkeeping — are the judges.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crossbar import (
    CrossbarModel,
    MappingError,
    check_placed,
    check_placement,
    map_program,
    place_greedy,
    step_row_violation,
)
from repro.mig import Mig, Realization, signal_not
from repro.rram import compile_mig


def random_mig(seed: int, num_pis: int = 4, num_gates: int = 10) -> Mig:
    rng = random.Random(seed)
    mig = Mig(f"rand{seed}")
    signals = [mig.add_pi() for _ in range(num_pis)] + [0]
    for _ in range(num_gates):
        picks = []
        while len(picks) < 3:
            s = signals[rng.randrange(len(signals))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        signals.append(mig.make_maj(*picks))
    for _ in range(2):
        s = signals[rng.randrange(len(signals) // 2, len(signals))]
        if rng.random() < 0.3:
            s = signal_not(s)
        mig.add_po(s)
    return mig


@given(st.integers(0, 10_000), st.sampled_from(list(Realization)))
@settings(max_examples=25, deadline=None)
def test_mapping_is_legal_and_bounded(seed, realization):
    program = compile_mig(random_mig(seed), realization).program
    placed = map_program(program)

    # Unique in-bounds cell per device.
    assert set(placed.cells) == set(range(program.num_devices))
    seen = set()
    for device, (row, col) in placed.cells.items():
        assert 0 <= row < placed.height
        assert 0 <= col < placed.width
        assert (row, col) not in seen
        seen.add((row, col))

    # No parallel step violates the wordline sense-path rule.
    row_of = {device: cell[0] for device, cell in placed.cells.items()}
    for step in placed.steps:
        assert step_row_violation(step.ops, row_of) is None

    # Parallel step count never exceeds the paper's sequential S.
    assert placed.num_parallel_steps <= program.num_steps
    assert 0.0 < placed.step_ratio <= 1.0

    # The full independent audit agrees.
    check_placed(placed)


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_one_device_per_wordline_is_always_feasible(seed):
    program = compile_mig(random_mig(seed), Realization.MAJ).program
    placed = map_program(program, 1, program.num_devices, refine=False)
    check_placed(placed)
    assert placed.num_parallel_steps <= program.num_steps


@given(st.integers(0, 10_000), st.sampled_from(list(Realization)))
@settings(max_examples=10, deadline=None)
def test_mapping_is_deterministic(seed, realization):
    program = compile_mig(random_mig(seed), realization).program
    first = map_program(program)
    second = map_program(program)
    assert first.cells == second.cells
    assert first.steps == second.steps
    assert first.op_map == second.op_map
    assert first.sense_map == second.sense_map


class TestInfeasibleArrays:
    def test_too_few_cells_raises(self):
        program = compile_mig(random_mig(7), Realization.MAJ).program
        with pytest.raises(MappingError, match="cells"):
            map_program(program, 2, 2)

    def test_capacity_check_in_placer(self):
        program = compile_mig(random_mig(7), Realization.IMP).program
        with pytest.raises(MappingError):
            place_greedy(program, CrossbarModel(1, 1))

    def test_nonpositive_geometry_rejected(self):
        with pytest.raises(MappingError, match="positive"):
            CrossbarModel(0, 4)


class TestAuditors:
    def test_check_placement_rejects_shared_cell(self):
        program = compile_mig(random_mig(3), Realization.MAJ).program
        placed = map_program(program)
        cells = dict(placed.cells)
        cells[0] = cells[1]  # collide two devices
        with pytest.raises(MappingError, match="share cell"):
            check_placement(
                program, CrossbarModel(placed.width, placed.height), cells
            )

    def test_check_placement_rejects_row_conflicts(self):
        # All devices crammed onto one wordline: any step with two ops
        # sensing two different devices must trip the rule.
        program = compile_mig(random_mig(3), Realization.IMP).program
        model = CrossbarModel(program.num_devices, 1)
        cells = {d: (0, d) for d in range(program.num_devices)}
        with pytest.raises(MappingError, match="sense path"):
            check_placement(program, model, cells)

    def test_check_placed_rejects_dropped_op(self):
        program = compile_mig(random_mig(11), Realization.MAJ).program
        placed = map_program(program)
        placed.steps[0].ops.pop()
        placed.steps[0].sources.pop()
        with pytest.raises(MappingError):
            check_placed(placed)
