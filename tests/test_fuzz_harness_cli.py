"""The campaign driver and its ``repro-synth fuzz`` front-end."""

import json

import pytest

from repro.cli import main
from repro.fuzz import FuzzConfig, FuzzReport, run_fuzz
from repro.rram import FAULT_CLASSES


class TestRunFuzz:
    def test_differential_smoke(self, tmp_path):
        # max_cases bounds the work; the seconds are a safety rail only.
        # The full oracle (tx/graph/batch differentials included) costs
        # ~60s for this seed's four cases on the reference box, so the
        # rail needs headroom or the assertion below races the clock.
        report = run_fuzz(FuzzConfig(
            seconds=180.0, seed=5, max_cases=4,
            out_dir=str(tmp_path),
        ))
        assert report.cases_run == 4
        assert report.failures == []
        assert report.bundles == []
        assert report.ok
        assert report.profile["oracle"] > 0
        # All three generator kinds got a turn.
        assert set(report.cases_by_kind) == {"mig", "table", "gates"}

    def test_fault_campaign_meets_floor_and_bundles_misses(self, tmp_path):
        report = run_fuzz(FuzzConfig(
            seconds=60.0, seed=3, max_cases=4, max_fault_sites=20,
            fault_classes=FAULT_CLASSES, out_dir=str(tmp_path),
            shrink_seconds=2.0,
        ))
        assert report.cases_run == 4
        assert set(report.fault_stats) == set(FAULT_CLASSES)
        summary = report.detection_summary()
        for fault_class in FAULT_CLASSES:
            row = summary[fault_class]
            assert row["sites"] > 0
            assert row["detection_rate"] >= 0.95, row
        # Every verification escape produced a repro bundle.
        total_missed_bundles = sum(
            1 for stats in report.fault_stats.values() if stats.misses
        )
        assert len(report.bundles) >= (1 if total_missed_bundles else 0)
        for bundle in report.bundles:
            payload = json.loads(open(f"{bundle}/repro.json").read())
            assert payload["failure"]["check"].startswith("fault-miss:")
            assert payload["fault"]["missed_sites"]

    def test_rejects_unknown_fault_class(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            run_fuzz(FuzzConfig(fault_classes=("gremlins",)))

    def test_report_ok_reflects_detection_floor(self):
        report = FuzzReport(config=FuzzConfig(min_detection=0.95))
        from repro.rram import FaultCampaignStats

        report.fault_stats["stuck-set"] = FaultCampaignStats(
            "stuck-set", detected=1, missed=1
        )
        assert not report.ok  # 50% < 95%
        report.fault_stats["stuck-set"] = FaultCampaignStats(
            "stuck-set", detected=20, missed=1
        )
        assert report.ok


class TestFuzzCli:
    def test_differential_run_passes(self, tmp_path, capsys):
        code = main([
            "fuzz", "--seconds", "2", "--seed", "1", "--max-cases", "3",
            "--out-dir", str(tmp_path), "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mode         : differential" in out
        assert "verdict      : PASS" in out
        assert "profile" in out

    def test_fault_run_reports_rates(self, tmp_path, capsys):
        code = main([
            "fuzz", "--seconds", "2", "--seed", "1", "--max-cases", "2",
            "--fault-classes", "stuck-set",
            "--out-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mode         : fault-injection" in out
        assert "stuck-set" in out
        assert "floor 95%" in out

    def test_all_faults_flag(self, tmp_path, capsys):
        code = main([
            "fuzz", "--seconds", "2", "--seed", "2", "--max-cases", "1",
            "--all-faults", "--out-dir", str(tmp_path),
            "--shrink-seconds", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        for fault_class in FAULT_CLASSES:
            assert fault_class in out
