"""Tests for the optional sifting hook in the BDD baseline flow."""

from repro.bdd import FALSE, Bdd, build_bdd_from_netlist
from repro.benchmarks import load_netlist
from repro.flows import run_table3_bdd
from repro.flows.experiments_sift import maybe_sift


def test_maybe_sift_respects_size_limit():
    netlist = load_netlist("x2")
    manager, roots = build_bdd_from_netlist(netlist)
    same_manager, same_roots = maybe_sift(manager, roots, size_limit=1)
    assert same_manager is manager
    assert same_roots == list(roots)


def test_maybe_sift_never_worse():
    netlist = load_netlist("x2")
    manager, roots = build_bdd_from_netlist(netlist)
    before = manager.count_nodes(roots)
    new_manager, new_roots = maybe_sift(manager, roots, size_limit=10_000)
    assert new_manager.count_nodes(new_roots) <= before


def test_maybe_sift_constant_roots():
    manager = Bdd(3)
    new_manager, new_roots = maybe_sift(manager, [FALSE], size_limit=100)
    assert new_roots == [FALSE]


def test_table3_bdd_with_sifting():
    plain = run_table3_bdd(["x2"], effort=4, verify=False, sift=False)
    sifted = run_table3_bdd(["x2"], effort=4, verify=False, sift=True)
    assert (
        sifted.rows["x2"].baseline_steps <= plain.rows["x2"].baseline_steps
    )
