"""Deterministic parallel execution layer.

The contract under test: the job count NEVER changes a result — only
how the work is scheduled.  Whole-set flows, fuzz campaigns, and
verification sweeps must be bit-identical at any ``jobs`` value.
"""

import random

import pytest

from repro.flows import render_summary, render_table2, run_table2, summarize_table2
from repro.fuzz import FuzzConfig, run_fuzz
from repro.mig import Mig, Realization, signal_not
from repro.parallel import (
    SEED_STRIDE,
    derive_seed,
    merge_counters,
    merged_counters,
    resolve_jobs,
    run_ordered,
    run_ordered_stream,
)
from repro.rram import (
    EXHAUSTIVE_CAP,
    VerificationCapError,
    compile_mig,
    find_first_mismatch,
    verification_vectors,
)


def square_task(payload):
    """Module-level so the process pool can pickle it."""
    index, value = payload
    return (index, value * value)


def test_derive_seed_matches_fuzz_case_seed():
    config = FuzzConfig(seed=17)
    for index in range(20):
        assert derive_seed(17, index) == config.case_seed(index)
    assert SEED_STRIDE == 1_000_003


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1


def test_run_ordered_inline_and_pool_agree():
    payloads = [(i, i + 3) for i in range(9)]
    inline = run_ordered(square_task, payloads, jobs=1)
    pooled = run_ordered(square_task, payloads, jobs=3)
    assert inline == pooled
    assert [index for index, _ in pooled] == list(range(9))


def test_run_ordered_stream_orders_and_stops():
    def payloads():
        for i in range(1000):
            yield (i, i)

    seen = []
    budget = {"left": 7}

    def should_continue():
        budget["left"] -= 1
        return budget["left"] > 0

    for result in run_ordered_stream(
        square_task, payloads(), jobs=1, should_continue=should_continue
    ):
        seen.append(result)
    # Bounded by the budget, ordered, and each verdict untouched.
    assert seen == [(i, i * i) for i in range(len(seen))]
    assert 0 < len(seen) < 1000


def test_merge_counters_sums_numeric_values():
    target = {"oracle": 1.5, "cases": 2}
    merge_counters(target, {"oracle": 0.5, "generate": 1.0})
    assert target == {"oracle": 2.0, "cases": 2, "generate": 1.0}
    merged = merged_counters([{"a": 1}, {"a": 2, "b": 3}, None])
    assert merged == {"a": 3, "b": 3}


@pytest.mark.parametrize("jobs", [2, 4])
def test_table2_output_is_bit_identical_across_job_counts(jobs):
    names = ["cm162a", "cm163a"]

    def rendered(job_count):
        result = run_table2(names, effort=2, verify=True, jobs=job_count)
        return (
            render_table2(result)
            + "\n"
            + render_summary(summarize_table2(result))
        )

    assert rendered(1) == rendered(jobs)


def test_table2_merged_profile_survives_workers():
    result = run_table2(["cm162a"], effort=2, verify=False, jobs=2)
    merged = result.merged_profile()
    assert merged.get("moves_tried", 0) > 0


def test_fuzz_differential_identical_across_job_counts(tmp_path):
    def report(job_count):
        config = FuzzConfig(
            seconds=600.0,
            seed=5,
            effort=2,
            max_cases=4,
            out_dir=str(tmp_path / f"j{job_count}"),
            jobs=job_count,
        )
        return run_fuzz(config)

    sequential = report(1)
    parallel = report(3)
    assert sequential.cases_run == parallel.cases_run == 4
    assert sequential.failures == parallel.failures
    assert sequential.cases_by_kind == parallel.cases_by_kind


def test_fuzz_fault_campaign_identical_across_job_counts(tmp_path):
    def summary(job_count):
        config = FuzzConfig(
            seconds=600.0,
            seed=3,
            max_cases=3,
            fault_classes=("stuck-set",),
            out_dir=str(tmp_path / f"f{job_count}"),
            jobs=job_count,
        )
        report = run_fuzz(config)
        return report.detection_summary(), report.cases_by_kind

    assert summary(1) == summary(2)


def _chain_mig(num_pis: int) -> Mig:
    mig = Mig(f"chain{num_pis}")
    pis = [mig.add_pi() for _ in range(num_pis)]
    acc = pis[0]
    for pi in pis[1:]:
        acc = mig.make_maj(acc, pi, 0)  # AND chain via constant 0
    mig.add_po(acc)
    return mig


def test_verify_sharding_is_bit_identical():
    rng = random.Random(11)
    mig = Mig("verify")
    pis = [mig.add_pi() for _ in range(9)]
    signals = list(pis)
    for _ in range(8):
        a, b, c = (rng.choice(signals) for _ in range(3))
        signals.append(mig.make_maj(signal_not(a), b, c))
    mig.add_po(signals[-1])
    report = compile_mig(mig, Realization.MAJ)
    inline = find_first_mismatch(mig, report, jobs=1, chunk_bits=64)
    sharded = find_first_mismatch(mig, report, jobs=2, chunk_bits=64)
    assert inline is None and sharded is None


def test_exhaustive_verification_refuses_beyond_the_cap():
    mig = _chain_mig(EXHAUSTIVE_CAP + 2)
    report = compile_mig(mig, Realization.IMP)
    with pytest.raises(VerificationCapError) as excinfo:
        find_first_mismatch(mig, report, exhaustive_limit=EXHAUSTIVE_CAP + 10)
    assert f"2^{EXHAUSTIVE_CAP}" in str(excinfo.value)
    with pytest.raises(VerificationCapError):
        verification_vectors(
            EXHAUSTIVE_CAP + 2, exhaustive_limit=EXHAUSTIVE_CAP + 10
        )
    # Sampled verification of the same wide program still works.
    assert find_first_mismatch(mig, report) is None
