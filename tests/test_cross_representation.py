"""Cross-representation consistency: MIG, BDD, AIG, and the netlist
must agree on every function, and the compiled RRAM programs of all
backends must agree with all of them.

These properties tie the whole library together: a bug in any one
lowering, simulator, or rewrite would show up as a disagreement.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import aig_from_netlist
from repro.bdd import build_bdd_from_netlist, dfs_variable_order
from repro.mig import Realization, mig_from_netlist, optimize_steps
from repro.network import GateType, Netlist

_GATES = [
    (GateType.AND, 2),
    (GateType.NAND, 2),
    (GateType.OR, 2),
    (GateType.NOR, 2),
    (GateType.XOR, 2),
    (GateType.XNOR, 2),
    (GateType.NOT, 1),
    (GateType.MAJ, 3),
    (GateType.MUX, 3),
]


def random_netlist(seed: int, num_inputs: int = 5, num_gates: int = 14) -> Netlist:
    rng = random.Random(seed)
    netlist = Netlist(f"xrep{seed}")
    nets = [netlist.add_input(f"in{i}") for i in range(num_inputs)]
    for index in range(num_gates):
        gate_type, arity = _GATES[rng.randrange(len(_GATES))]
        operands = [nets[rng.randrange(len(nets))] for _ in range(arity)]
        netlist.add_gate(f"n{index}", gate_type, operands)
        nets.append(f"n{index}")
    for _ in range(2):
        netlist.set_output(nets[rng.randrange(num_inputs, len(nets))])
    return netlist


@given(st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_mig_aig_bdd_agree(seed):
    netlist = random_netlist(seed)
    reference = netlist.truth_tables()

    assert mig_from_netlist(netlist).truth_tables() == reference
    assert aig_from_netlist(netlist).truth_tables() == reference

    manager, roots = build_bdd_from_netlist(netlist)
    order = dfs_variable_order(netlist)
    position = {name: i for i, name in enumerate(netlist.inputs)}
    for assignment in range(1 << len(netlist.inputs)):
        bits = [
            bool((assignment >> i) & 1) for i in range(len(netlist.inputs))
        ]
        vec = [bits[position[name]] for name in order]
        for root, table in zip(roots, reference):
            assert manager.evaluate(root, vec) == table.value_at(assignment)


@given(st.integers(0, 100_000))
@settings(max_examples=12, deadline=None)
def test_optimized_mig_still_agrees_with_all(seed):
    """Optimization + compilation must not drift from the other
    representations."""
    from repro.rram import compile_mig, run_program

    netlist = random_netlist(seed, num_gates=10)
    reference = netlist.truth_tables()
    mig = mig_from_netlist(netlist)
    optimize_steps(mig, Realization.MAJ, effort=4)
    assert mig.truth_tables() == reference

    report = compile_mig(mig, Realization.MAJ)
    for assignment in range(1 << len(netlist.inputs)):
        vec = [
            bool((assignment >> i) & 1) for i in range(len(netlist.inputs))
        ]
        expected = [t.value_at(assignment) for t in reference]
        assert run_program(report.program, vec) == expected
