"""System-level integration: benchmark → optimize → compile → execute.

The full paper pipeline on real suite circuits, checked at every stage:
the optimized MIG is equivalent to the source netlist, the compiled
micro-program matches the Table-I step model, and the device-level
execution reproduces the netlist's function on sampled vectors.
"""

import random

import pytest

from repro.benchmarks import load_netlist
from repro.mig import (
    Realization,
    mig_from_netlist,
    optimize_rram,
    optimize_steps,
    rram_costs,
)
from repro.rram import compile_mig, compile_plim, run_program

CIRCUITS = ["rd53f2", "con1f1", "xor5_d", "x2", "clip", "max46_d"]


def sample_vectors(num_inputs: int, count: int = 24, seed: int = 0xE2E):
    rng = random.Random(seed)
    vectors = [[False] * num_inputs, [True] * num_inputs]
    for _ in range(count):
        vectors.append([rng.random() < 0.5 for _ in range(num_inputs)])
    return vectors


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("realization", list(Realization))
def test_full_pipeline(name, realization):
    netlist = load_netlist(name)
    mig = mig_from_netlist(netlist)
    optimize_steps(mig, realization, effort=8)

    report = compile_mig(mig, realization)
    assert report.steps_match_model

    for vector in sample_vectors(len(netlist.inputs)):
        assignment = {
            input_name: value
            for input_name, value in zip(netlist.inputs, vector)
        }
        expected_map = netlist.simulate(assignment)
        expected = [expected_map[output] for output in netlist.outputs]
        actual = run_program(report.program, vector)
        assert actual == expected, (name, realization, vector)


@pytest.mark.parametrize("name", ["rd53f2", "con1f1", "x2"])
def test_full_pipeline_plim(name):
    netlist = load_netlist(name)
    mig = mig_from_netlist(netlist)
    optimize_rram(mig, Realization.MAJ, effort=8)
    report = compile_plim(mig)
    for vector in sample_vectors(len(netlist.inputs), count=12):
        assignment = {
            input_name: value
            for input_name, value in zip(netlist.inputs, vector)
        }
        expected_map = netlist.simulate(assignment)
        expected = [expected_map[output] for output in netlist.outputs]
        assert run_program(report.program, vector) == expected


@pytest.mark.parametrize("name", CIRCUITS)
def test_maj_dominates_imp_after_optimization(name):
    """The paper's headline inequality on every suite circuit."""
    netlist = load_netlist(name)
    mig = mig_from_netlist(netlist)
    optimize_steps(mig, Realization.MAJ, effort=8)
    maj = rram_costs(mig, Realization.MAJ)
    imp = rram_costs(mig, Realization.IMP)
    assert maj.steps < imp.steps
    assert maj.rrams <= imp.rrams
