"""Tests for the reference benchmark function generators."""

import pytest

from repro.truth import (
    TruthTable,
    adder_function,
    clip_style_function,
    comparator_function,
    con1_style_function,
    count_ones_function,
    majority_function,
    multiplexer_function,
    nine_sym_function,
    parity_function,
    squarer_function,
    sym10_function,
    symmetric_band_function,
)


def test_parity_small():
    (table,) = parity_function(3)
    assert table == TruthTable.from_function(3, lambda i: sum(i) % 2 == 1)


def test_parity_is_balanced():
    (table,) = parity_function(6)
    assert table.count_ones() == table.num_entries // 2


def test_count_ones_rd53():
    tables = count_ones_function(5, 3)
    assert len(tables) == 3
    for assignment in range(32):
        ones = bin(assignment).count("1")
        value = sum(
            (1 << b) for b in range(3) if tables[b].value_at(assignment)
        )
        assert value == ones


def test_count_ones_rd84_width():
    tables = count_ones_function(8, 4)
    # 8 ones needs 4 bits: the top bit fires only on the all-ones row.
    assert tables[3].count_ones() == 1
    assert tables[3].value_at(255)


def test_symmetric_band():
    (table,) = symmetric_band_function(6, 2, 4)
    for assignment in range(64):
        ones = bin(assignment).count("1")
        assert table.value_at(assignment) == (2 <= ones <= 4)


def test_symmetric_band_validates_range():
    with pytest.raises(ValueError):
        symmetric_band_function(5, 4, 2)
    with pytest.raises(ValueError):
        symmetric_band_function(5, 0, 6)


def test_nine_sym_matches_band():
    assert nine_sym_function() == symmetric_band_function(9, 3, 6)


def test_sym10_matches_band():
    assert sym10_function() == symmetric_band_function(10, 3, 6)


def test_nine_sym_is_symmetric():
    (table,) = nine_sym_function()
    # Swapping any two variables leaves a symmetric function unchanged:
    # check by comparing cofactor pairs.
    for i in range(8):
        assert table.cofactor(i, True).cofactor(i + 1, False) == table.cofactor(
            i, False
        ).cofactor(i + 1, True)


def test_multiplexer():
    (table,) = multiplexer_function(2)
    # 4 data + 2 selects = 6 vars; data d0..d3 then s0, s1.
    assert table.num_vars == 6
    for assignment in range(64):
        inputs = [(assignment >> i) & 1 for i in range(6)]
        sel = inputs[4] | (inputs[5] << 1)
        assert table.value_at(assignment) == bool(inputs[sel])


def test_majority_function():
    (table,) = majority_function(5)
    for assignment in range(32):
        assert table.value_at(assignment) == (bin(assignment).count("1") >= 3)


def test_majority_rejects_even():
    with pytest.raises(ValueError):
        majority_function(4)


def test_adder_function():
    tables = adder_function(3)
    assert len(tables) == 4
    for assignment in range(1 << 7):
        bits = [(assignment >> i) & 1 for i in range(7)]
        a = bits[0] | bits[1] << 1 | bits[2] << 2
        b = bits[3] | bits[4] << 1 | bits[5] << 2
        total = a + b + bits[6]
        got = sum(1 << i for i in range(4) if tables[i].value_at(assignment))
        assert got == total


def test_comparator_function():
    less, equal = comparator_function(2)
    for assignment in range(16):
        bits = [(assignment >> i) & 1 for i in range(4)]
        a = bits[0] | bits[1] << 1
        b = bits[2] | bits[3] << 1
        assert less.value_at(assignment) == (a < b)
        assert equal.value_at(assignment) == (a == b)


def test_squarer_function():
    tables = squarer_function(3)
    assert len(tables) == 6
    for x in range(8):
        got = sum(1 << b for b in range(6) if tables[b].value_at(x))
        assert got == x * x


def test_con1_style_interface():
    tables = con1_style_function()
    assert len(tables) == 2
    assert all(t.num_vars == 7 for t in tables)
    assert not any(t.is_constant() for t in tables)


def test_clip_style():
    tables = clip_style_function()
    assert len(tables) == 5
    # +15 stays +15; +100 clips to +15; -200 clips to -16 (0b10000).
    def val(x):
        raw = x & 0x1FF
        return sum(1 << b for b in range(5) if tables[b].value_at(raw))

    assert val(15) == 15
    assert val(100) == 15
    assert val(-200) == 0b10000
    assert val(-3) == (-3 & 0x1F)
