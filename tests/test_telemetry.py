"""Tests for the unified telemetry subsystem.

Pins down the contracts the observability layer promises:

* the registry's pay-for-use guarantee (disabled == shared no-op
  singleton, no registration, near-zero overhead);
* deterministic snapshot/absorb merging (bit-identical metrics for any
  ``--jobs`` count);
* span nesting and the JSONL trace schema round-trip;
* trajectory/CostView consistency across rollbacks, and the acceptance
  criterion that a ``synth --trace`` run's final trajectory snapshot
  carries exactly the R/S the CLI prints.
"""

import io
import json
import re
import time

import pytest

from repro.telemetry import (
    KNOWN_METRICS,
    NOOP_METRIC,
    NOOP_SPAN,
    SCHEMA_VERSION,
    MetricsRegistry,
    TelemetryError,
    Tracer,
    TraceWriter,
    TrajectoryRecorder,
    canonical_profile,
    install_tracer,
    isolated_registry,
    load_trace,
    metrics,
    publish_profile,
    render_profile,
    span,
    trajectory_recording,
    use_registry,
    validate_metric_names,
    validate_record,
    validate_trace,
)


class TestRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("mig.strash_hits").inc(3)
        reg.counter("mig.strash_hits").inc()
        reg.gauge("perf_guard.tx_seconds").set(1.5)
        hist = reg.histogram("rram.plim.instructions")
        hist.observe(10)
        hist.observe(4)
        snap = reg.snapshot()
        assert snap == {
            "mig.strash_hits": 4,
            "perf_guard.tx_seconds": 1.5,
            "rram.plim.instructions.count": 2,
            "rram.plim.instructions.max": 10,
            "rram.plim.instructions.min": 4,
            "rram.plim.instructions.total": 14,
        }
        assert list(snap) == sorted(snap)

    def test_empty_histogram_omitted(self):
        reg = MetricsRegistry()
        reg.histogram("rram.plim.devices")
        assert reg.snapshot() == {}

    def test_timer_observes_elapsed(self):
        reg = MetricsRegistry()
        with reg.timer("fuzz.stage_seconds.generate"):
            pass
        snap = reg.snapshot()
        assert snap["fuzz.stage_seconds.generate.count"] == 1
        assert snap["fuzz.stage_seconds.generate.total"] >= 0

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.counter("Bad Name")
        with pytest.raises(TelemetryError):
            reg.counter("trailing.dot.")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("mig.tx_rollbacks")
        with pytest.raises(TelemetryError):
            reg.gauge("mig.tx_rollbacks")

    def test_absorb_is_commutative(self):
        a = {"x.count": 2, "x.total": 5, "x.min": 1, "x.max": 4, "c": 7}
        b = {"x.count": 1, "x.total": 9, "x.min": 0.5, "x.max": 9, "c": 3}
        first = MetricsRegistry()
        first.absorb(a)
        first.absorb(b)
        second = MetricsRegistry()
        second.absorb(b)
        second.absorb(a)
        merged = first.snapshot()
        assert merged == second.snapshot()
        assert merged == {
            "c": 10, "x.count": 3, "x.total": 14, "x.min": 0.5, "x.max": 9,
        }

    def test_absorb_merges_with_live_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("rram.compile.measured_steps").observe(6)
        reg.absorb({
            "rram.compile.measured_steps.count": 1,
            "rram.compile.measured_steps.total": 2,
            "rram.compile.measured_steps.min": 2,
            "rram.compile.measured_steps.max": 2,
        })
        snap = reg.snapshot()
        assert snap["rram.compile.measured_steps.count"] == 2
        assert snap["rram.compile.measured_steps.min"] == 2
        assert snap["rram.compile.measured_steps.max"] == 6


class TestDisabledRegistry:
    def test_noop_singleton_identity(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a.b") is NOOP_METRIC
        assert reg.gauge("c.d") is NOOP_METRIC
        assert reg.histogram("e.f") is NOOP_METRIC
        assert reg.timer("g.h") is NOOP_METRIC
        # Nothing registers, nothing validates, snapshot stays empty.
        reg.counter("NOT A VALID NAME").inc(100)
        assert reg.snapshot() == {}
        reg.absorb({"x": 1})
        assert reg.snapshot() == {}

    def test_noop_overhead_guard(self):
        """A disabled-registry increment must stay cheap: no allocation,
        no locking, no dict lookups per call beyond the handle fetch."""
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("hot.loop")
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            counter.inc()
        noop_seconds = time.perf_counter() - start
        # Generous absolute bound: ~100x slack over a plain method call
        # loop on any plausible CI machine; catches accidental per-call
        # allocation or registration creeping into the no-op path.
        assert noop_seconds < 1.0

    def test_noop_span_when_no_tracer(self):
        previous = install_tracer(None)
        try:
            assert span("anything", attr=1) is NOOP_SPAN
        finally:
            install_tracer(previous)


class TestRegistryScoping:
    def test_use_registry_scopes_current(self):
        fresh = MetricsRegistry()
        with use_registry(fresh):
            assert metrics() is fresh
            metrics().counter("optimizer.moves_tried").inc()
        assert metrics() is not fresh
        assert fresh.snapshot() == {"optimizer.moves_tried": 1}

    def test_isolated_registry_inherits_enabled_flag(self):
        with use_registry(MetricsRegistry(enabled=False)):
            with isolated_registry() as inner:
                assert not inner.enabled
        with use_registry(MetricsRegistry(enabled=True)):
            with isolated_registry() as inner:
                assert inner.enabled
                inner.counter("optimizer.moves_tried").inc(2)
                snap = inner.snapshot()
            assert snap == {"optimizer.moves_tried": 2}
            # The isolated work never leaked into the parent registry.
            assert metrics().snapshot() == {}


class TestTracing:
    @staticmethod
    def _trace_records(body):
        buffer = io.StringIO()
        writer = TraceWriter(buffer, close_handle=False)
        previous = install_tracer(Tracer(writer))
        try:
            body()
        finally:
            install_tracer(previous)
        return [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
        ]

    def test_span_nesting_and_ordering(self):
        def body():
            with span("outer", effort=4):
                with span("inner.first"):
                    pass
                with span("inner.second"):
                    pass

        records = self._trace_records(body)
        # Children close before parents (Chrome-trace style).
        assert [r["name"] for r in records] == [
            "inner.first", "inner.second", "outer",
        ]
        outer = records[2]
        assert outer["parent_id"] is None
        assert outer["attrs"] == {"effort": 4}
        for child in records[:2]:
            assert child["parent_id"] == outer["span_id"]
            assert child["dur_s"] >= 0
        for record in records:
            assert validate_record(record) == []

    def test_span_set_attaches_attrs(self):
        def body():
            with span("measured") as live:
                live.set(outcome="accepted")

        (record,) = self._trace_records(body)
        assert record["attrs"] == {"outcome": "accepted"}


class TestSchema:
    def test_record_round_trip(self):
        records = [
            {"type": "meta", "schema_version": SCHEMA_VERSION,
             "command": "synth", "args": {"effort": 6}},
            {"type": "span", "name": "pass.reshape", "span_id": 2,
             "parent_id": 1, "start_s": 0.1, "dur_s": 0.01},
            {"type": "trajectory", "iteration": 0, "rule": "initial",
             "accepted": True, "r": 48, "s": 89, "depth": 11, "size": 37,
             "complemented_edges": 5, "realization": "maj"},
            {"type": "metrics",
             "metrics": {"costview.cache_hits": 12}},
        ]
        for record in records:
            rebuilt = json.loads(json.dumps(record))
            assert validate_record(rebuilt) == [], record["type"]

    def test_missing_field_reported(self):
        errors = validate_record({"type": "span", "name": "x"})
        assert errors
        assert any("span_id" in err for err in errors)

    def test_unknown_type_reported(self):
        assert validate_record({"type": "mystery"})

    def test_validate_trace_rejects_unknown_metric_names(self):
        records = [
            {"type": "metrics", "metrics": {"costview.cache_hits": 1}},
            {"type": "metrics", "metrics": {"rogue.counter": 1}},
        ]
        errors = validate_trace(records)
        assert len(errors) == 1
        assert "record 2" in errors[0] and "rogue.counter" in errors[0]

    def test_metric_name_catalog(self):
        every_known = {name: 1 for name in KNOWN_METRICS}
        assert validate_metric_names(every_known) == []
        assert validate_metric_names(
            {"fuzz.stage_seconds.generate": 0.5}
        ) == []
        assert validate_metric_names(
            {"rram.plim.instructions.count": 3}
        ) == []
        errors = validate_metric_names({"made.up.metric": 1})
        assert errors and "made.up.metric" in errors[0]
        assert validate_metric_names({"costview.cache_hits": True})

    def test_canonical_profile_maps_legacy_names(self):
        canon = canonical_profile({"full_recomputes": 2, "tx_rollbacks": 1})
        assert canon["costview.full_recomputes"] == 2
        assert canon["mig.tx_rollbacks"] == 1

    def test_publish_profile_absorbs_once(self):
        with use_registry(MetricsRegistry()):
            publish_profile({"cache_hits": 5})
            publish_profile(None)  # a no-op, not an error
            assert metrics().snapshot() == {"costview.cache_hits": 5}


class TestWorkerMerging:
    NAMES = ["x2", "misex1"]

    def _run(self, jobs):
        from repro.flows.experiments import run_table2

        with use_registry(MetricsRegistry()) as registry:
            run_table2(self.NAMES, effort=4, jobs=jobs)
            return registry.snapshot()

    def test_jobs_1_vs_2_bit_identical(self):
        sequential = self._run(1)
        parallel = self._run(2)
        assert sequential  # the flow actually produced metrics
        assert json.dumps(sequential, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_merged_names_all_known(self):
        snapshot = self._run(1)
        assert validate_metric_names(snapshot) == []


class TestTrajectory:
    @pytest.mark.parametrize("realization_name", ["imp", "maj"])
    def test_validate_mode_through_optimizer(self, realization_name):
        """Running a whole optimization under ``validate=True`` proves
        every view-supplied snapshot matches from-scratch statistics —
        including after rollbacks."""
        from repro.benchmarks import load_mig
        from repro.mig import Realization, optimize_steps
        from repro.mig.views import level_stats

        realization = Realization(realization_name)
        mig = load_mig("xor5_d")
        recorder = TrajectoryRecorder(realization, validate=True)
        with trajectory_recording(recorder):
            recorder.record_state(mig, None, rule="initial", accepted=True)
            optimize_steps(mig, realization, 6)
            final = recorder.record_final(mig)
        reference = level_stats(mig)
        assert final["r"] == reference.rram_count(realization)
        assert final["s"] == reference.step_count(realization)
        assert final["size"] == mig.num_gates()
        assert recorder.final is final
        assert recorder.accepted_count() >= 1
        iterations = [snap["iteration"] for snap in recorder.snapshots]
        assert iterations == list(range(len(iterations)))

    def test_inactive_recording_is_free(self):
        from repro.telemetry import active_trajectory

        assert active_trajectory() is None
        with trajectory_recording(None):
            assert active_trajectory() is None


class TestCliAcceptance:
    def test_synth_trace_final_matches_printed(self, tmp_path, capsys):
        """Acceptance criterion: the final trajectory snapshot of a
        ``synth --trace`` run carries exactly the R/S printed by the
        CLI, for both realizations."""
        from repro.cli import main

        for realization in ("imp", "maj"):
            trace = tmp_path / f"synth_{realization}.jsonl"
            assert main([
                "synth", "xor5_d", "--algorithm", "steps", "--effort", "6",
                "--realization", realization, "--trace", str(trace),
            ]) == 0
            out = capsys.readouterr().out
            match = re.search(r"optimized\s+:.* R=(\d+) S=(\d+)", out)
            assert match, out
            records = load_trace(str(trace))
            assert validate_trace(records) == []
            finals = [
                r for r in records
                if r["type"] == "trajectory" and r["rule"] == "final"
            ]
            assert len(finals) == 1
            assert finals[0]["r"] == int(match.group(1))
            assert finals[0]["s"] == int(match.group(2))
            assert finals[0]["realization"] == realization

    def test_trace_report_renders_and_validates(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        metrics_file = tmp_path / "m.json"
        assert main([
            "synth", "xor5_d", "--algorithm", "steps", "--effort", "4",
            "--trace", str(trace), "--metrics", str(metrics_file),
        ]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(trace), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "schema       : OK" in out
        assert "trajectory" in out
        # The --metrics sidecar holds only catalogued names.
        snapshot = json.loads(metrics_file.read_text())
        assert validate_metric_names(snapshot) == []

    def test_trace_report_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "name": "orphan"}\n')
        assert main(["trace-report", str(bad), "--validate"]) == 1
        assert capsys.readouterr().err


class TestRenderProfile:
    def test_empty_profile_message(self):
        out = render_profile({}, title="cost-view counters")
        assert out == "profile      : (no cost-view counters recorded)"

    def test_rows_sorted_and_aligned(self):
        out = render_profile(
            {"b_counter": 2, "a_counter": 1}, title="t", canonicalize=False
        )
        lines = out.splitlines()
        assert lines[0] == "profile      : t"
        assert lines[1].strip().startswith("a_counter")
        assert lines[2].strip().startswith("b_counter")
