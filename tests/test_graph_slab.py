"""Slab storage-engine tests (the ``REPRO_GRAPH`` switch).

The numpy-slab engine must be a *bit-identical* drop-in for the
object-dict engine: same graph content after arbitrary generated
mutation sequences, same structural event streams, same transaction
rollback behaviour, same ``level_stats`` / CostView answers — with the
vectorized kernels force-enabled (``KERNEL_MIN_NODES = 0``) so the
small property-test graphs actually exercise the numpy paths the
production cutover reserves for ≥4096-node graphs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig import (
    CostView,
    Mig,
    MigError,
    ObjectMig,
    SlabMig,
    graph_engine,
    graph_engine_name,
    level_stats,
    signal_not,
)
from repro.mig.rewrite import apply_inverter_propagation


def build_random_mig(seed: int, num_pis: int = 4, num_gates: int = 10) -> Mig:
    rng = random.Random(seed)
    mig = Mig(f"slab{seed}")
    signals = [mig.add_pi() for _ in range(num_pis)] + [0]
    for _ in range(num_gates):
        picks = []
        while len(picks) < 3:
            s = signals[rng.randrange(len(signals))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        signals.append(mig.make_maj(*picks))
    for _ in range(3):
        s = signals[rng.randrange(len(signals) // 2, len(signals))]
        if rng.random() < 0.3:
            s = signal_not(s)
        mig.add_po(s)
    return mig


def capture(mig: Mig):
    """Content snapshot of every piece of mutable graph state."""
    return (
        list(mig._children),
        list(mig._is_pi),
        [dict(counts) for counts in mig._fanout],
        list(mig._pis),
        list(mig._pi_names),
        list(mig._pos),
        list(mig._po_names),
        dict(mig._strash),
    )


def random_mutation(mig: Mig, rng: random.Random) -> None:
    choice = rng.randrange(5)
    gates = [n for n in range(len(mig._children)) if mig.is_gate(n)]
    pool = [p << 1 for p in mig._pis] + [g << 1 for g in gates] + [0]
    if choice <= 1:
        picks = []
        while len(picks) < 3:
            s = pool[rng.randrange(len(pool))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        mig.make_maj(*picks)
    elif choice == 2 and gates:
        apply_inverter_propagation(mig, gates[rng.randrange(len(gates))])
    elif choice == 3 and mig.num_pos:
        index = rng.randrange(mig.num_pos)
        s = pool[rng.randrange(len(pool))]
        if rng.random() < 0.4:
            s = signal_not(s)
        mig.set_po(index, s)
    else:
        mig.sweep_dead()


def _paired_migs(seed: int):
    """The same random graph under both engines, kernels forced on."""
    with graph_engine("object"):
        obj = build_random_mig(seed)
    with graph_engine("slab"):
        slab = build_random_mig(seed)
    slab.KERNEL_MIN_NODES = 0
    return obj, slab


def _stats_key(stats):
    return (
        stats.depth,
        stats.size,
        stats.nodes_per_level,
        stats.complements_per_level,
        stats.po_complements,
        dict(stats.node_levels),
    )


class TestEngineDispatch:
    def test_default_engine_is_slab(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPH", raising=False)
        assert graph_engine_name() == "slab"
        assert isinstance(Mig("m"), SlabMig)

    def test_env_selects_object_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "object")
        assert graph_engine_name() == "object"
        mig = Mig("m")
        assert isinstance(mig, ObjectMig)
        assert not isinstance(mig, SlabMig)

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "slab")
        with graph_engine("object"):
            assert isinstance(Mig("m"), ObjectMig)
        assert isinstance(Mig("m"), SlabMig)

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "mmap")
        with pytest.raises(MigError):
            Mig("m")
        monkeypatch.delenv("REPRO_GRAPH")
        with pytest.raises(MigError):
            graph_engine("mmap").__enter__()

    def test_clone_preserves_engine(self):
        with graph_engine("object"):
            obj = build_random_mig(5)
        with graph_engine("slab"):
            # Engine comes from the cloned instance's type, not the
            # ambient switch.
            assert isinstance(obj.clone(), ObjectMig)
        with graph_engine("slab"):
            slab = build_random_mig(5)
        assert isinstance(slab, SlabMig)
        with graph_engine("object"):
            assert isinstance(slab.clone(), SlabMig)

    def test_counters_include_slab_gauges(self):
        with graph_engine("slab"):
            mig = build_random_mig(3)
        snapshot = mig.counters_snapshot()
        assert snapshot["graph.nodes_allocated"] == len(mig._children)
        assert "graph.slab_capacity" in snapshot
        assert snapshot["graph.compactions"] == 0
        mig.compact()
        assert mig.counters_snapshot()["graph.compactions"] == 1


class TestBitIdentity:
    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_mutation_sequences_bit_identical(self, seed):
        rng_obj = random.Random(seed)
        rng_slab = random.Random(seed)
        obj, slab = _paired_migs(seed % 10_000)
        for _ in range(10 + seed % 20):
            random_mutation(obj, rng_obj)
            random_mutation(slab, rng_slab)
        assert capture(obj) == capture(slab)
        assert _stats_key(level_stats(obj)) == _stats_key(level_stats(slab))

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_event_streams_identical(self, seed):
        rng_obj = random.Random(seed)
        rng_slab = random.Random(seed)
        obj, slab = _paired_migs(seed % 10_000)
        obj_cursor = obj.enable_event_log()
        slab_cursor = slab.enable_event_log()
        for _ in range(5 + seed % 15):
            random_mutation(obj, rng_obj)
            random_mutation(slab, rng_slab)
        assert obj.events_since(obj_cursor) == slab.events_since(slab_cursor)

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_rollback_restores_slab_state_exactly(self, seed):
        rng = random.Random(seed)
        with graph_engine("slab"):
            mig = build_random_mig(rng.randrange(10_000))
        mig.KERNEL_MIN_NODES = 0
        # Materialize the slab cache before the transaction so rollback
        # exercises the dirty-list resync, not a cold full rebuild.
        level_stats(mig)
        stack = []
        for _ in range(rng.randrange(10, 30)):
            action = rng.random()
            if action < 0.25 and len(stack) < 4:
                stack.append((mig.checkpoint(), capture(mig)))
            elif action < 0.45 and stack:
                token, reference = stack.pop()
                mig.rollback(token)
                assert capture(mig) == reference
                # The slab cache must track the restored content:
                # kernel answer == scalar answer on the same graph.
                kernel_stats = _stats_key(level_stats(mig))
                mig.KERNEL_MIN_NODES = 10**9
                scalar_stats = _stats_key(level_stats(mig))
                mig.KERNEL_MIN_NODES = 0
                assert kernel_stats == scalar_stats
            elif action < 0.55 and stack:
                token, _reference = stack.pop()
                mig.commit(token)
            else:
                random_mutation(mig, rng)

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_costview_consistent_on_slab_kernel(self, seed):
        rng = random.Random(seed)
        with graph_engine("slab"):
            mig = build_random_mig(rng.randrange(10_000))
        mig.KERNEL_MIN_NODES = 0
        view = CostView(mig)
        view.stats()
        for _ in range(rng.randrange(5, 15)):
            random_mutation(mig, rng)
        view.stats()
        view.assert_consistent()

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_vectorized_clone_matches_object_clone(self, seed):
        rng_obj = random.Random(seed)
        rng_slab = random.Random(seed)
        obj, slab = _paired_migs(seed % 10_000)
        for _ in range(seed % 10):
            random_mutation(obj, rng_obj)
            random_mutation(slab, rng_slab)
        obj_clone = obj.clone()
        slab_clone = slab.clone()
        assert capture(obj_clone) == capture(slab_clone)
        # Insertion order is part of the contract (iteration order
        # feeds deterministic optimizers downstream).
        assert list(obj_clone._strash) == list(slab_clone._strash)
        assert [list(f) for f in obj_clone._fanout] == [
            list(f) for f in slab_clone._fanout
        ]
