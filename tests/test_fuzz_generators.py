"""The fuzz case generators: structured, seeded, and actually varied."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import (
    GENERATOR_KINDS,
    MigFuzzSpec,
    case_circuit,
    random_gate_netlist,
    random_mig,
    random_mig_netlist,
    random_table_netlist,
)
from repro.mig import mig_matches_netlist


class TestRandomMig:
    def test_respects_spec_interface(self):
        spec = MigFuzzSpec(num_inputs=5, num_gates=20, num_outputs=3, seed=11)
        mig = random_mig(spec)
        mig.check_invariants()
        assert mig.num_pis == 5
        assert mig.num_pos == 3

    def test_seed_determines_structure(self):
        spec = MigFuzzSpec(num_inputs=4, num_gates=15, num_outputs=2, seed=3)
        first, second = random_mig(spec), random_mig(spec)
        assert first.truth_tables() == second.truth_tables()
        assert first.num_gates() == second.num_gates()

    def test_different_seeds_differ(self):
        tables = [
            random_mig(
                MigFuzzSpec(num_inputs=5, num_gates=18, num_outputs=2, seed=s)
            ).truth_tables()
            for s in range(8)
        ]
        assert any(t != tables[0] for t in tables[1:])

    def test_dead_node_rate_leaves_dead_logic(self):
        # dead_node_rate only keeps gates out of the *output* choice, so
        # any one seed may still wire every gate into a live cone;
        # across a handful of seeds the generator must leave some
        # allocated gate nodes outside the PO-reachable set.
        def has_dead_logic(seed):
            spec = MigFuzzSpec(
                num_inputs=5, num_gates=30, num_outputs=1, seed=seed,
                dead_node_rate=0.5,
            )
            mig = random_mig(spec)
            allocated_gates = (
                mig.num_nodes_allocated - mig.num_pis - 1  # minus const
            )
            return mig.num_gates() < allocated_gates

        assert any(has_dead_logic(seed) for seed in range(10))

    def test_netlist_export_matches(self):
        spec = MigFuzzSpec(num_inputs=4, num_gates=12, num_outputs=2, seed=9)
        mig = random_mig(spec)
        assert mig_matches_netlist(mig, random_mig_netlist(spec))


class TestOtherGenerators:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_table_netlist_is_wellformed(self, seed):
        netlist = random_table_netlist(4, 2, seed)
        netlist.validate()
        assert len(netlist.inputs) == 4
        assert len(netlist.outputs) == 2

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_gate_netlist_is_wellformed(self, seed):
        netlist = random_gate_netlist(seed)
        netlist.validate()
        assert netlist.truth_tables()  # simulable


class TestCaseCircuit:
    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    def test_all_kinds_produce_checkable_cases(self, kind):
        netlist, mig = case_circuit(kind, 77)
        netlist.validate()
        if mig is not None:
            assert mig_matches_netlist(mig, netlist)

    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    def test_small_cases_stay_small(self, kind):
        netlist, _ = case_circuit(kind, 123, small=True)
        assert len(netlist.inputs) <= 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            case_circuit("quantum", 1)
