"""Packed kernels vs the scalar reference paths they replace.

Every engine in :mod:`repro.sim.engine` must agree bit-for-bit with
per-assignment evaluation — on hypothesis-generated MIGs and netlists
with complemented edges and constant fanins, and on compiled RRAM
micro-programs replayed against the device-level simulator.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import build_bdd_from_netlist, dfs_variable_order
from repro.fuzz.generators import GENERATOR_KINDS, case_netlist
from repro.mig import Mig, Realization, signal_not
from repro.rram import compile_mig, compile_plim, run_program
from repro.sim import (
    evaluate_bdd_slices,
    execute_program_slices,
    first_difference,
    iter_assignment_chunks,
    simulate_mig_slices,
    simulate_netlist_slices,
    unpack_word,
)


def random_mig(seed: int, num_pis: int = 4, num_gates: int = 10) -> Mig:
    """Deterministic random MIG with complemented edges and constants."""
    rng = random.Random(seed)
    mig = Mig(f"rand{seed}")
    # Signal 0 is constant false; complementing yields constant true,
    # so both constants appear as fanins.
    signals = [mig.add_pi() for _ in range(num_pis)] + [0]
    for _ in range(num_gates):
        picks = []
        while len(picks) < 3:
            s = signals[rng.randrange(len(signals))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        signals.append(mig.make_maj(*picks))
    for _ in range(2):
        s = signals[rng.randrange(len(signals) // 2, len(signals))]
        if rng.random() < 0.3:
            s = signal_not(s)
        mig.add_po(s)
    return mig


@given(st.integers(0, 10_000), st.integers(1, 701))
@settings(max_examples=40, deadline=None)
def test_mig_slices_match_truth_tables(seed, chunk_bits):
    mig = random_mig(seed)
    tables = mig.truth_tables()
    for chunk in iter_assignment_chunks(mig.num_pis, chunk_bits):
        words = simulate_mig_slices(mig, chunk.slices, chunk.mask)
        for word, table in zip(words, tables):
            expected = (table.bits >> chunk.start) & chunk.mask
            assert first_difference(word, expected) == -1


@given(st.sampled_from(GENERATOR_KINDS), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_aig_slices_match_truth_tables(kind, seed):
    from repro.aig import aig_from_netlist
    from repro.sim import simulate_aig_slices

    netlist = case_netlist(kind, seed, small=True)
    aig = aig_from_netlist(netlist)
    tables = aig.truth_tables()
    for chunk in iter_assignment_chunks(aig.num_pis, 128):
        words = simulate_aig_slices(aig, chunk.slices, chunk.mask)
        for word, table in zip(words, tables):
            expected = (table.bits >> chunk.start) & chunk.mask
            assert first_difference(word, expected) == -1


@given(
    st.sampled_from(GENERATOR_KINDS),
    st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_netlist_slices_match_scalar_evaluation(kind, seed):
    netlist = case_netlist(kind, seed, small=True)
    tables = netlist.truth_tables()
    num_inputs = len(netlist.inputs)
    for chunk in iter_assignment_chunks(num_inputs, 256):
        words = simulate_netlist_slices(netlist, chunk.slices, chunk.mask)
        for word, table in zip(words, tables):
            # Cross-check a packed word against per-assignment
            # TruthTable.evaluate, not just the packed table bits.
            values = unpack_word(word, chunk.count)
            for v, value in enumerate(values):
                assignment = chunk.start + v
                inputs = [
                    bool((assignment >> i) & 1) for i in range(num_inputs)
                ]
                assert value == table.evaluate(inputs)


@given(
    st.integers(0, 10_000),
    st.sampled_from([Realization.IMP, Realization.MAJ]),
)
@settings(max_examples=15, deadline=None)
def test_program_executor_matches_device_simulator(seed, realization):
    mig = random_mig(seed)
    report = compile_mig(mig, realization)
    program = report.program
    num_inputs = mig.num_pis
    for chunk in iter_assignment_chunks(num_inputs, 64):
        words = execute_program_slices(program, chunk.slices, chunk.mask)
        for v in range(chunk.count):
            assignment = chunk.start + v
            vector = [bool((assignment >> i) & 1) for i in range(num_inputs)]
            scalar = run_program(program, vector)
            packed = [bool((word >> v) & 1) for word in words]
            assert packed == scalar


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_plim_executor_matches_device_simulator(seed):
    mig = random_mig(seed, num_pis=3, num_gates=6)
    plim = compile_plim(mig)
    num_inputs = mig.num_pis
    for chunk in iter_assignment_chunks(num_inputs, 16):
        words = execute_program_slices(
            plim.program, chunk.slices, chunk.mask
        )
        for v in range(chunk.count):
            assignment = chunk.start + v
            vector = [bool((assignment >> i) & 1) for i in range(num_inputs)]
            scalar = run_program(plim.program, vector)
            packed = [bool((word >> v) & 1) for word in words]
            assert packed == scalar


@given(
    st.sampled_from(GENERATOR_KINDS),
    st.integers(0, 10_000),
)
@settings(max_examples=20, deadline=None)
def test_bdd_slices_match_scalar_evaluate(kind, seed):
    netlist = case_netlist(kind, seed, small=True)
    manager, roots = build_bdd_from_netlist(netlist)
    order = dfs_variable_order(netlist)
    position = {name: i for i, name in enumerate(netlist.inputs)}
    num_inputs = len(netlist.inputs)
    for chunk in iter_assignment_chunks(num_inputs, 128):
        var_slices = [chunk.slices[position[name]] for name in order]
        words = evaluate_bdd_slices(manager, roots, var_slices, chunk.mask)
        for v in range(chunk.count):
            assignment = chunk.start + v
            inputs = [bool((assignment >> i) & 1) for i in range(num_inputs)]
            bdd_assignment = [inputs[position[name]] for name in order]
            for word, root in zip(words, roots):
                assert bool((word >> v) & 1) == manager.evaluate(
                    root, bdd_assignment
                )
