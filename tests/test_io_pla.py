"""Tests for the espresso PLA reader/writer."""

import pytest

from repro.io import (
    PlaFormatError,
    parse_pla,
    pla_to_netlist,
    pla_truth_tables,
    tables_to_pla,
    write_pla,
)
from repro.truth import TruthTable

SAMPLE = """
# two-output sample
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
11- 10
--1 01
1-1 11
.e
"""


def test_parse_header():
    cover = parse_pla(SAMPLE)
    assert cover.num_inputs == 3
    assert cover.num_outputs == 2
    assert cover.input_labels == ["a", "b", "c"]
    assert cover.output_labels == ["f", "g"]
    assert len(cover.cubes) == 3


def test_semantics():
    f, g = pla_truth_tables(parse_pla(SAMPLE))
    expected_f = TruthTable.from_function(
        3, lambda i: (i[0] and i[1]) or (i[0] and i[2])
    )
    expected_g = TruthTable.from_function(3, lambda i: i[2])
    assert f == expected_f
    assert g == expected_g


def test_default_labels():
    cover = parse_pla(".i 2\n.o 1\n11 1\n.e\n")
    assert cover.input_labels == ["x0", "x1"]
    assert cover.output_labels == ["f0"]


def test_cube_without_space():
    cover = parse_pla(".i 2\n.o 1\n111\n.e\n")
    assert cover.cubes == [("11", "1")]


def test_bad_cube_width():
    with pytest.raises(PlaFormatError):
        parse_pla(".i 2\n.o 1\n111 1\n.e\n")


def test_bad_cube_char():
    with pytest.raises(PlaFormatError):
        parse_pla(".i 2\n.o 1\n1z 1\n.e\n")


def test_missing_header():
    with pytest.raises(PlaFormatError):
        parse_pla("11 1\n.e\n")


def test_netlist_constant_outputs():
    cover = parse_pla(".i 2\n.o 2\n-- 10\n.e\n")
    one, zero = pla_truth_tables(cover)
    assert one == TruthTable.constant(2, True)
    assert zero == TruthTable.constant(2, False)


def test_netlist_single_literal_products():
    cover = parse_pla(".i 2\n.o 1\n1- 1\n-0 1\n.e\n")
    (table,) = pla_truth_tables(cover)
    assert table == TruthTable.from_function(2, lambda i: i[0] or not i[1])


def test_write_roundtrip():
    cover = parse_pla(SAMPLE)
    text = write_pla(cover)
    reparsed = parse_pla(text)
    assert pla_truth_tables(reparsed) == pla_truth_tables(cover)


def test_tables_to_pla_roundtrip():
    maj = TruthTable.from_function(3, lambda i: sum(i) >= 2)
    parity = TruthTable.from_function(3, lambda i: sum(i) % 2 == 1)
    cover = tables_to_pla([maj, parity], name="pair")
    assert pla_truth_tables(cover) == [maj, parity]


def test_tables_to_pla_rejects_mixed_arity():
    with pytest.raises(PlaFormatError):
        tables_to_pla([TruthTable.constant(2, True), TruthTable.constant(3, True)])


def test_tables_to_pla_rejects_empty():
    with pytest.raises(PlaFormatError):
        tables_to_pla([])


def test_file_roundtrip(tmp_path):
    from repro.io import read_pla, save_pla

    cover = parse_pla(SAMPLE, name="sample")
    path = tmp_path / "sample.pla"
    save_pla(cover, str(path))
    loaded = read_pla(str(path))
    assert pla_truth_tables(loaded) == pla_truth_tables(cover)


def test_netlist_interface():
    netlist = pla_to_netlist(parse_pla(SAMPLE))
    assert netlist.inputs == ["a", "b", "c"]
    assert netlist.outputs == ["f", "g"]


class TestVerilogWriter:
    def test_verilog_structure(self, full_adder_netlist):
        from repro.io import write_verilog

        text = write_verilog(full_adder_netlist)
        assert text.startswith("module fa (")
        assert "input a;" in text
        assert "output sum;" in text
        assert "xor(axb, a, b);" in text
        assert "(a & b) | (a & cin) | (b & cin)" in text
        assert text.rstrip().endswith("endmodule")

    def test_verilog_all_gate_types(self):
        from repro.io import write_verilog
        from repro.network import GateType, Netlist

        n = Netlist("all")
        for name in "abc":
            n.add_input(name)
        n.add_gate("g_mux", GateType.MUX, ["a", "b", "c"])
        n.add_gate("g_c0", GateType.CONST0, [])
        n.add_gate("g_c1", GateType.CONST1, [])
        n.add_gate("g_buf", GateType.BUF, ["a"])
        for gate in list(n.gates()):
            n.set_output(gate.name)
        text = write_verilog(n)
        assert "a ? b : c" in text
        assert "1'b0" in text and "1'b1" in text

    def test_verilog_duplicate_outputs(self, full_adder_netlist):
        from repro.io import write_verilog

        full_adder_netlist.set_output("sum")
        text = write_verilog(full_adder_netlist)
        assert "sum_dup1" in text
        assert "assign sum_dup1 = sum;" in text

    def test_verilog_escaped_identifiers(self):
        from repro.io import write_verilog
        from repro.network import GateType, Netlist

        n = Netlist("esc")
        n.add_input("a[0]")
        n.add_gate("out.q", GateType.NOT, ["a[0]"])
        n.set_output("out.q")
        text = write_verilog(n)
        assert "\\a[0] " in text

    def test_save_verilog(self, tmp_path, full_adder_netlist):
        from repro.io import save_verilog

        path = tmp_path / "fa.v"
        save_verilog(full_adder_netlist, str(path))
        assert path.read_text().startswith("module")
