"""Tests for NPN canonization and exact small-function synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig import Mig, exact_size, npn_canonize, synthesize_exact
from repro.mig.npn import apply_npn_to_signals, npn_class_count
from repro.truth import TruthTable, table_mask, ternary_majority


class TestNpn:
    def test_class_counts_match_theory(self):
        # Known values: 1 class over 0 vars (output negation joins the
        # constants), 2 over 1, 4 over 2, 14 over 3.
        assert npn_class_count(0) == 1
        assert npn_class_count(1) == 2
        assert npn_class_count(2) == 4
        assert npn_class_count(3) == 14

    @given(st.integers(0, table_mask(3)))
    @settings(max_examples=80, deadline=None)
    def test_canonical_form_is_class_invariant(self, bits):
        """Negating an input must not change the representative."""
        table = TruthTable(3, bits)
        rep_a, _ = npn_canonize(table)
        flipped = TruthTable(
            3,
            (table.cofactor(0, True).bits & TruthTable.variable(3, 0).bits
             ^ table.bits) ^ table.bits,
        )
        del flipped
        # Negate variable 0 semantically: swap cofactors.
        x = TruthTable.variable(3, 0)
        negated = (x & table.cofactor(0, False)) | (~x & table.cofactor(0, True))
        rep_b, _ = npn_canonize(negated)
        assert rep_a == rep_b

    @given(st.integers(0, table_mask(3)))
    @settings(max_examples=60, deadline=None)
    def test_output_negation_is_class_invariant(self, bits):
        table = TruthTable(3, bits)
        assert npn_canonize(table)[0] == npn_canonize(~table)[0]

    @given(st.integers(0, table_mask(3)))
    @settings(max_examples=60, deadline=None)
    def test_transform_recovers_original(self, bits):
        """Building the representative over transformed leaves yields
        the original function — validated through an actual MIG."""
        table = TruthTable(3, bits)
        representative, transform = npn_canonize(table)
        mig = Mig()
        leaves = [mig.add_pi() for _ in range(3)]
        rep_leaves, out_neg = apply_npn_to_signals(transform, leaves)
        from repro.mig.resynth import synthesize_table

        root = synthesize_table(mig, representative, rep_leaves)
        mig.add_po(root ^ (1 if out_neg else 0))
        assert mig.truth_tables() == [table]

    def test_limit(self):
        with pytest.raises(ValueError):
            npn_canonize(TruthTable.constant(5, True))


class TestExactSynthesis:
    def test_known_minimal_sizes(self):
        maj = TruthTable.from_function(3, lambda i: sum(i) >= 2)
        conj = TruthTable.from_function(3, lambda i: i[0] and i[1])
        xor2 = TruthTable.from_function(3, lambda i: i[0] != i[1])
        xor3 = TruthTable.from_function(3, lambda i: sum(i) % 2 == 1)
        assert exact_size(maj) == 1
        assert exact_size(conj) == 1
        assert exact_size(xor2) == 3
        assert exact_size(xor3) == 3  # the celebrated MIG result

    def test_trivial_functions_cost_zero(self):
        assert exact_size(TruthTable.constant(3, True)) == 0
        assert exact_size(TruthTable.variable(3, 1)) == 0
        assert exact_size(~TruthTable.variable(3, 2)) == 0

    @given(st.integers(0, table_mask(3)))
    @settings(max_examples=120, deadline=None)
    def test_every_function_synthesizes_correctly(self, bits):
        table = TruthTable(3, bits)
        mig = Mig()
        leaves = [mig.add_pi() for _ in range(3)]
        root = synthesize_exact(mig, table, leaves)
        mig.add_po(root)
        assert mig.truth_tables() == [table]
        assert mig.num_gates() <= 4  # known bound for the 3-var space

    @given(st.integers(0, table_mask(3)))
    @settings(max_examples=60, deadline=None)
    def test_size_matches_construction(self, bits):
        table = TruthTable(3, bits)
        mig = Mig()
        leaves = [mig.add_pi() for _ in range(3)]
        synthesize_exact(mig, table, leaves)
        # Structural hashing can only merge, never add.
        assert mig.num_gates() <= exact_size(table)

    def test_two_variable_tables_accepted(self):
        table = TruthTable.from_function(2, lambda i: i[0] or i[1])
        mig = Mig()
        leaves = [mig.add_pi() for _ in range(2)]
        root = synthesize_exact(mig, table, leaves)
        mig.add_po(root)
        assert mig.truth_tables() == [table.extend(2)]

    def test_rejects_large_tables(self):
        with pytest.raises(ValueError):
            exact_size(TruthTable.constant(4, True))

    def test_size_histogram(self):
        """The cost distribution over all 256 functions is fixed."""
        histogram = {}
        for bits in range(256):
            size = exact_size(TruthTable(3, bits))
            histogram[size] = histogram.get(size, 0) + 1
        assert histogram == {0: 8, 1: 32, 2: 64, 3: 56, 4: 96}
        assert sum(histogram.values()) == 256
