"""Tests for the AIG package and the AIG-based RRAM baseline."""

import pytest

from repro.aig import (
    CONST0,
    CONST1,
    Aig,
    aig_from_netlist,
    aig_rram_costs,
    compile_aig,
    signal_not,
)
from repro.network import GateType, Netlist
from repro.rram import run_program
from repro.truth import TruthTable

from conftest import reference_full_adder_tables


class TestGraph:
    def test_constant_folding(self):
        aig = Aig()
        a = aig.add_pi()
        assert aig.make_and(a, CONST0) == CONST0
        assert aig.make_and(a, CONST1) == a
        assert aig.make_and(a, a) == a
        assert aig.make_and(a, signal_not(a)) == CONST0

    def test_strashing(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        assert aig.make_and(a, b) == aig.make_and(b, a)
        assert aig.num_ands() == 0  # not reachable: no POs yet

    def test_num_ands_counts_live_only(self):
        aig = Aig()
        a, b, c = (aig.add_pi() for _ in range(3))
        dead = aig.make_and(a, b)
        live = aig.make_and(b, c)
        aig.add_po(live)
        assert aig.num_ands() == 1

    def test_or_xor_mux_maj_semantics(self):
        aig = Aig()
        a, b, c = (aig.add_pi() for _ in range(3))
        aig.add_po(aig.make_or(a, b))
        aig.add_po(aig.make_xor(a, b))
        aig.add_po(aig.make_mux(a, b, c))
        aig.add_po(aig.make_maj(a, b, c))
        t_or, t_xor, t_mux, t_maj = aig.truth_tables()
        va, vb, vc = (TruthTable.variable(3, i) for i in range(3))
        assert t_or == (va | vb)
        assert t_xor == (va ^ vb)
        assert t_mux == (va & vb) | (~va & vc)
        assert t_maj == (va & vb) | (va & vc) | (vb & vc)

    def test_depth(self):
        aig = Aig()
        a, b, c, d = (aig.add_pi() for _ in range(4))
        chain = aig.make_and(aig.make_and(aig.make_and(a, b), c), d)
        aig.add_po(chain)
        assert aig.depth() == 3

    def test_complemented_edge_count(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.make_or(a, b))  # !(!a . !b): two complemented ins
        assert aig.complemented_edge_count() == 2

    def test_bad_signal_rejected(self):
        aig = Aig()
        a = aig.add_pi()
        with pytest.raises(ValueError):
            aig.make_and(a, 999)

    def test_repr(self):
        assert "pis=0" in repr(Aig())


class TestFromNetlist:
    def test_full_adder(self, full_adder_netlist):
        aig = aig_from_netlist(full_adder_netlist)
        assert aig.truth_tables() == reference_full_adder_tables()

    def test_nary_and_constants(self):
        n = Netlist()
        for name in "abcd":
            n.add_input(name)
        n.add_gate("wide", GateType.NOR, ["a", "b", "c", "d"])
        n.add_gate("k1", GateType.CONST1, [])
        n.add_gate("mix", GateType.XNOR, ["wide", "k1"])
        n.set_output("mix")
        aig = aig_from_netlist(n)
        assert aig.truth_tables() == n.truth_tables()


class TestSynthesis:
    def test_costs_match_compiled_steps(self, full_adder_netlist):
        aig = aig_from_netlist(full_adder_netlist)
        costs = aig_rram_costs(aig)
        program = compile_aig(aig)
        assert program.num_steps == costs.steps
        assert costs.nodes == aig.num_ands()

    def test_program_computes_netlist(self, full_adder_netlist):
        aig = aig_from_netlist(full_adder_netlist)
        program = compile_aig(aig)
        tables = reference_full_adder_tables()
        for assignment in range(8):
            vec = [bool((assignment >> i) & 1) for i in range(3)]
            assert run_program(program, vec) == [
                t.value_at(assignment) for t in tables
            ]

    def test_steps_grow_with_nodes(self):
        """[12]'s sequential schedule: steps are node-count bound."""
        small = Aig()
        a, b = small.add_pi(), small.add_pi()
        small.add_po(small.make_and(a, b))
        big = Aig()
        pis = [big.add_pi() for _ in range(6)]
        acc = pis[0]
        for p in pis[1:]:
            acc = big.make_xor(acc, p)
        big.add_po(acc)
        assert aig_rram_costs(big).steps > 3 * aig_rram_costs(small).steps

    def test_complemented_edges_cost_extra(self):
        plain = Aig()
        a, b = plain.add_pi(), plain.add_pi()
        plain.add_po(plain.make_and(a, b))
        inverted = Aig()
        a, b = inverted.add_pi(), inverted.add_pi()
        inverted.add_po(inverted.make_and(signal_not(a), signal_not(b)))
        assert aig_rram_costs(inverted).steps > aig_rram_costs(plain).steps

    def test_constant_and_passthrough_pos(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.make_and(a, b))
        aig.add_po(CONST1)
        aig.add_po(CONST0)
        aig.add_po(a)
        program = compile_aig(aig)
        assert run_program(program, [True, False]) == [False, True, False, True]

    def test_complemented_po(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(signal_not(aig.make_and(a, b)))
        program = compile_aig(aig)
        for assignment in range(4):
            vec = [bool((assignment >> i) & 1) for i in range(2)]
            assert run_program(program, vec) == [not (vec[0] and vec[1])]

    def test_device_reuse(self):
        aig = Aig()
        pis = [aig.add_pi() for _ in range(8)]
        acc = pis[0]
        for p in pis[1:]:
            acc = aig.make_xor(acc, p)
        aig.add_po(acc)
        program = compile_aig(aig)
        # Without reuse: inputs + 2 const + 2 scratch + 2 per node.
        assert program.num_devices < 8 + 4 + 2 * aig.num_ands()


class TestBalance:
    def test_balances_chain(self):
        from repro.aig import balance

        aig = Aig("chain")
        pis = [aig.add_pi() for _ in range(8)]
        acc = pis[0]
        for p in pis[1:]:
            acc = aig.make_and(acc, p)
        aig.add_po(acc)
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert balanced.truth_tables() == aig.truth_tables()

    def test_balance_preserves_function(self, full_adder_netlist):
        from repro.aig import balance

        aig = aig_from_netlist(full_adder_netlist)
        balanced = balance(aig)
        assert balanced.truth_tables() == aig.truth_tables()
        assert balanced.depth() <= aig.depth()

    def test_balance_random(self):
        import random as random_module
        from repro.aig import balance

        rng = random_module.Random(3)
        for seed in range(8):
            aig = Aig(f"r{seed}")
            signals = [aig.add_pi() for _ in range(5)] + [0, 1]
            for _ in range(14):
                a = signals[rng.randrange(len(signals))]
                b = signals[rng.randrange(len(signals))]
                if rng.random() < 0.4:
                    a = signal_not(a)
                if rng.random() < 0.4:
                    b = signal_not(b)
                signals.append(aig.make_and(a, b))
            aig.add_po(signals[-1])
            aig.add_po(signal_not(signals[-2]))
            balanced = balance(aig)
            assert balanced.truth_tables() == aig.truth_tables()
            assert balanced.depth() <= aig.depth()

    def test_balance_passthrough_pos(self):
        from repro.aig import balance, CONST1

        aig = Aig()
        a = aig.add_pi()
        aig.add_po(a)
        aig.add_po(CONST1)
        balanced = balance(aig)
        assert balanced.truth_tables() == aig.truth_tables()
