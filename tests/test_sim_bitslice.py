"""Property tests for the bit-slice packing primitives.

The packed encoding must agree with the scalar reference semantics of
:class:`repro.truth.TruthTable` on every window, every packing, and
every word-level primitive — these tests pin the contract the packed
engines (:mod:`repro.sim.engine`) are built on.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    DEFAULT_CHUNK_BITS,
    chunk_mask,
    first_difference,
    imp_word,
    input_slices,
    iter_assignment_chunks,
    iter_ones,
    maj_word,
    mux_word,
    pack_vectors,
    popcount,
    random_slices,
    unpack_word,
    variable_slice,
)
from repro.truth import TruthTable, variable_pattern


@given(
    st.integers(0, 7),
    st.integers(0, 512),
    st.integers(0, 300),
)
@settings(max_examples=150, deadline=None)
def test_variable_slice_matches_scalar_definition(index, start, count):
    word = variable_slice(index, start, count)
    assert word >> count == 0, "slice must fit the window mask"
    for v in range(count):
        expected = ((start + v) >> index) & 1
        assert (word >> v) & 1 == expected


@given(st.integers(1, 6))
@settings(max_examples=20, deadline=None)
def test_full_window_equals_truth_table_pattern(num_vars):
    total = 1 << num_vars
    for index in range(num_vars):
        assert variable_slice(index, 0, total) == variable_pattern(
            num_vars, index
        )


@given(st.integers(0, 13), st.integers(1, 700))
@settings(max_examples=60, deadline=None)
def test_chunks_tile_the_space_exactly_once(num_inputs, chunk_bits):
    chunks = list(iter_assignment_chunks(num_inputs, chunk_bits))
    total = 1 << num_inputs
    assert [c.start for c in chunks] == list(range(0, total, chunk_bits))
    assert sum(c.count for c in chunks) == total
    # Reassembling the windows of every input reproduces the full
    # variable pattern.
    for index in range(num_inputs):
        rebuilt = 0
        for chunk in chunks:
            assert chunk.mask == chunk_mask(chunk.count)
            rebuilt |= chunk.slices[index] << chunk.start
        assert rebuilt == variable_pattern(num_inputs, index)


@given(
    st.lists(
        st.lists(st.booleans(), min_size=4, max_size=4),
        min_size=0,
        max_size=40,
    )
)
@settings(max_examples=80, deadline=None)
def test_pack_unpack_roundtrip(vectors):
    slices, mask, count = pack_vectors(vectors, 4)
    assert count == len(vectors)
    assert mask == chunk_mask(count)
    for i in range(4):
        column = unpack_word(slices[i], count)
        assert column == [bool(vector[i]) for vector in vectors]


@given(st.integers(0, 1 << 64))
@settings(max_examples=100, deadline=None)
def test_iter_ones_and_popcount(word):
    positions = list(iter_ones(word))
    assert positions == sorted(positions)
    assert len(positions) == popcount(word)
    rebuilt = 0
    for position in positions:
        rebuilt |= 1 << position
    assert rebuilt == word


@given(st.integers(0, 1 << 48), st.integers(0, 1 << 48))
@settings(max_examples=100, deadline=None)
def test_first_difference_is_lowest_disagreeing_bit(a, b):
    position = first_difference(a, b)
    if a == b:
        assert position == -1
    else:
        assert (a >> position) & 1 != (b >> position) & 1
        low_mask = (1 << position) - 1
        assert a & low_mask == b & low_mask


@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=60, deadline=None)
def test_word_primitives_match_truth_table_operators(a, b, c):
    ta, tb, tc = (TruthTable(3, bits) for bits in (a, b, c))
    mask = chunk_mask(8)
    from repro.truth import if_then_else, ternary_majority

    assert maj_word(a, b, c) == ternary_majority(ta, tb, tc).bits
    assert imp_word(a, b, mask) == ta.implies(tb).bits
    assert mux_word(a, b, c, mask) == if_then_else(ta, tb, tc).bits


def test_random_slices_reproduces_the_historical_sampling():
    # The miter verdicts recorded across the repo depend on this exact
    # stream: one getrandbits word per input from one seeded Random.
    for num_inputs, num_vectors, seed in [(3, 64, 7), (16, 2048, 0xD47E)]:
        rng = random.Random(seed)
        expected = [rng.getrandbits(num_vectors) for _ in range(num_inputs)]
        assert random_slices(num_inputs, num_vectors, seed) == expected


def test_input_slices_and_default_chunk():
    assert DEFAULT_CHUNK_BITS == 4096
    slices = input_slices(3, 0, 8)
    assert slices == [0b10101010, 0b11001100, 0b11110000]
