"""Tests for cut enumeration, MFFC, resynthesis, and cut rewriting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig import (
    EquivalenceGuard,
    Mig,
    cut_function,
    cut_rewrite,
    enumerate_cuts,
    mffc_size,
    mig_from_truth_tables,
    optimize_area_plus,
    signal_node,
    signal_not,
    synthesize_table,
)
from repro.truth import TruthTable, table_mask, ternary_majority


def chain_mig():
    """f = M(M(M(a,b,c), d, e), a, b) — a 3-node chain."""
    mig = Mig("chain")
    a, b, c, d, e = (mig.add_pi(n) for n in "abcde")
    n1 = mig.make_maj(a, b, c)
    n2 = mig.make_maj(n1, d, e)
    n3 = mig.make_maj(n2, a, b)
    mig.add_po(n3)
    return mig, (n1, n2, n3)


class TestCutEnumeration:
    def test_trivial_cut_first(self):
        mig, (n1, n2, n3) = chain_mig()
        cuts = enumerate_cuts(mig)
        for node in (n1, n2, n3):
            assert cuts[signal_node(node)][0] == frozenset(
                (signal_node(node),)
            )

    def test_leaf_cut_present(self):
        mig, (n1, n2, n3) = chain_mig()
        cuts = enumerate_cuts(mig, cut_size=5)
        pis = set(mig.pis)
        # The PI cut of the root covers all five inputs.
        assert any(cut <= pis and len(cut) == 5 for cut in cuts[signal_node(n3)])

    def test_cut_size_respected(self):
        mig, (_n1, _n2, n3) = chain_mig()
        for k in (2, 3, 4):
            cuts = enumerate_cuts(mig, cut_size=k)
            assert all(
                len(cut) <= k or cut == frozenset((signal_node(n3),))
                for cut in cuts[signal_node(n3)]
            )

    def test_dominated_cuts_pruned(self):
        mig, (_n1, _n2, n3) = chain_mig()
        cuts = enumerate_cuts(mig)
        node_cuts = cuts[signal_node(n3)]
        for i, cut_a in enumerate(node_cuts):
            for cut_b in node_cuts[i + 1 :]:
                assert not (cut_a < cut_b), "dominated cut survived"


class TestCutFunction:
    def test_single_gate(self, maj3_mig):
        (node,) = maj3_mig.reachable_nodes()
        leaves = sorted(maj3_mig.pis)
        table = cut_function(maj3_mig, node, leaves)
        a, b, c = (TruthTable.variable(3, i) for i in range(3))
        assert table == ternary_majority(a, b, c)

    def test_complemented_edges(self):
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        f = mig.make_and(signal_not(a), b)
        mig.add_po(f)
        table = cut_function(mig, signal_node(f), sorted(mig.pis))
        va, vb = TruthTable.variable(2, 0), TruthTable.variable(2, 1)
        assert table == (~va & vb)

    def test_escaping_cone_rejected(self):
        mig, (n1, _n2, n3) = chain_mig()
        with pytest.raises(ValueError):
            # Cut excludes part of the cone.
            cut_function(mig, signal_node(n3), [signal_node(n1)])


class TestMffc:
    def test_chain_mffc_is_whole_cone(self):
        mig, (n1, n2, n3) = chain_mig()
        assert mffc_size(mig, signal_node(n3), mig.pis) == 3

    def test_shared_node_excluded(self):
        mig = Mig()
        a, b, c, d = (mig.add_pi() for _ in range(4))
        shared = mig.make_maj(a, b, c)
        top = mig.make_maj(shared, d, a)
        other = mig.make_maj(shared, b, d)  # second fanout of `shared`
        mig.add_po(top)
        mig.add_po(other)
        assert mffc_size(mig, signal_node(top), mig.pis) == 1

    def test_po_reference_excluded(self):
        mig, (n1, n2, n3) = chain_mig()
        mig.add_po(n2)  # n2 now observable: only n3 dies
        assert mffc_size(mig, signal_node(n3), mig.pis) == 1


class TestResynthesis:
    @given(st.integers(0, table_mask(4)))
    @settings(max_examples=120, deadline=None)
    def test_synthesizes_any_4var_function(self, bits):
        table = TruthTable(4, bits)
        mig = Mig()
        leaves = [mig.add_pi() for _ in range(4)]
        root = synthesize_table(mig, table, leaves)
        mig.add_po(root)
        assert mig.truth_tables() == [table]

    def test_majority_recognized_natively(self):
        table = TruthTable.from_function(3, lambda i: sum(i) >= 2)
        mig = Mig()
        leaves = [mig.add_pi() for _ in range(3)]
        mig.add_po(synthesize_table(mig, table, leaves))
        assert mig.num_gates() == 1  # a single M node, not a mux tree

    def test_xor_recognized(self):
        table = TruthTable.from_function(3, lambda i: sum(i) % 2 == 1)
        mig = Mig()
        leaves = [mig.add_pi() for _ in range(3)]
        mig.add_po(synthesize_table(mig, table, leaves))
        assert mig.num_gates() <= 6  # two XORs at 3 nodes each

    def test_mixed_polarity_majority(self):
        table = TruthTable.from_function(
            3, lambda i: (i[0] and not i[1]) or (i[0] and i[2])
            or (not i[1] and i[2])
        )  # M(x, !y, z)
        mig = Mig()
        leaves = [mig.add_pi() for _ in range(3)]
        mig.add_po(synthesize_table(mig, table, leaves))
        assert mig.num_gates() == 1

    def test_leaf_arity_checked(self):
        mig = Mig()
        a = mig.add_pi()
        with pytest.raises(ValueError):
            synthesize_table(mig, TruthTable.constant(2, True), [a])

    def test_complemented_leaves(self):
        table = TruthTable.from_function(2, lambda i: i[0] and i[1])
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        root = synthesize_table(mig, table, [signal_not(a), b])
        mig.add_po(root)
        va, vb = TruthTable.variable(2, 0), TruthTable.variable(2, 1)
        assert mig.truth_tables() == [~va & vb]


class TestCutRewrite:
    def test_preserves_function(self):
        from repro.truth import nine_sym_function

        mig = mig_from_truth_tables(nine_sym_function(), "9sym")
        guard = EquivalenceGuard(mig)
        cut_rewrite(mig)
        guard.verify_or_raise()
        mig.check_invariants()

    def test_rewrites_redundant_mux_tree(self):
        # A mux tree computing plain majority must collapse to 1 node.
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        root = mig.make_mux(a, mig.make_or(b, c), mig.make_and(b, c))
        mig.add_po(root)
        assert mig.num_gates() == 5  # or, and, two and-legs, final or
        assert cut_rewrite(mig)
        assert mig.num_gates() == 1

    def test_never_grows(self):
        random_gen = random.Random(7)
        for seed in range(6):
            mig = Mig()
            signals = [mig.add_pi() for _ in range(5)] + [0]
            for _ in range(15):
                picks = [
                    signals[random_gen.randrange(len(signals))] ^ (
                        1 if random_gen.random() < 0.4 else 0
                    )
                    for _ in range(3)
                ]
                signals.append(mig.make_maj(*picks))
            mig.add_po(signals[-1])
            mig.add_po(signals[-3])
            before = mig.num_gates()
            guard = EquivalenceGuard(mig)
            cut_rewrite(mig)
            guard.verify_or_raise()
            assert mig.num_gates() <= before

    def test_optimize_area_plus_never_worse(self):
        from repro.benchmarks import load_mig

        mig = load_mig("misex1")
        guard = EquivalenceGuard(mig, num_vectors=256)
        result = optimize_area_plus(mig, 4)
        guard.verify_or_raise()
        assert result.final_size <= result.initial_size


class TestSweepDead:
    def test_sweep_removes_rejected_candidates(self, maj3_mig):
        a = maj3_mig.pis[0] << 1
        b = maj3_mig.pis[1] << 1
        dead = maj3_mig.make_maj(signal_not(a), signal_not(b), 1)
        dead_node = signal_node(dead)
        assert maj3_mig.is_gate(dead_node)
        swept = maj3_mig.sweep_dead()
        assert swept == 1
        assert not maj3_mig.is_gate(dead_node)
        assert maj3_mig.num_gates() == 1

    def test_sweep_keeps_live(self, maj3_mig):
        assert maj3_mig.sweep_dead() == 0
        assert maj3_mig.num_gates() == 1
        maj3_mig.check_invariants()


class TestSubstituteCascadeRegression:
    def test_redirection_chains_resolve(self):
        """Regression: a cascade that merges the *target* of an earlier
        redirection must not leave live parents pointing at detached
        nodes (found by cut rewriting on apex7)."""
        random_gen = random.Random(0xBEEF)
        for seed in range(12):
            mig = Mig()
            signals = [mig.add_pi() for _ in range(5)] + [0, 1]
            for _ in range(18):
                picks = [
                    signals[random_gen.randrange(len(signals))]
                    ^ (1 if random_gen.random() < 0.5 else 0)
                    for _ in range(3)
                ]
                signals.append(mig.make_maj(*picks))
            for s in signals[-4:]:
                mig.add_po(s)
            guard = EquivalenceGuard(mig)
            cut_rewrite(mig, allow_zero_gain=True, max_rounds=3)
            guard.verify_or_raise()
            # Every live node's children must be alive.
            for node in mig.reachable_nodes():
                for child in mig.children(node):
                    child_node = signal_node(child)
                    assert (
                        child_node == 0
                        or mig.is_pi(child_node)
                        or mig.is_gate(child_node)
                    ), f"dangling child {child_node}"


class TestOptimizeRramPlus:
    def test_preserves_function_and_contract(self):
        from repro.benchmarks import load_mig
        from repro.mig import (
            Realization,
            optimize_rram_plus,
            optimize_steps,
            rram_costs,
        )

        probe = load_mig("misex1")
        optimize_steps(probe, Realization.MAJ, 16)
        star = rram_costs(probe, Realization.MAJ)

        mig = load_mig("misex1")
        guard = EquivalenceGuard(mig, num_vectors=256)
        optimize_rram_plus(mig, Realization.MAJ, 6)
        guard.verify_or_raise()
        after = rram_costs(mig, Realization.MAJ)
        assert after.rrams <= star.rrams
        assert after.steps <= int(star.steps * 1.45) + 1
