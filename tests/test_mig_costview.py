"""Tests for the incremental cost view (:mod:`repro.mig.costview`).

The CostView promises *exact* agreement with the from-scratch
:func:`repro.mig.views.level_stats` after any mutation sequence, plus
exact speculative scoring for Ω.I flip groups.  These tests hammer both
promises with random mutation storms, and pin the optimizer-facing
contract: identical results to the view-less baseline and preserved
Boolean functions.
"""

import copy
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig import (
    CostView,
    EquivalenceGuard,
    Mig,
    Realization,
    level_stats,
    mig_from_truth_tables,
    optimize_rram,
    optimize_steps,
    signal_node,
    signal_not,
)
from repro.mig.algorithms import (
    _level_clear_plan,
    _try_clear_level,
    _try_clear_po_level,
    clear_complemented_levels,
)
from repro.mig.rewrite import (
    apply_associativity,
    apply_distributivity_lr,
    apply_distributivity_rl,
    apply_inverter_propagation,
)
from repro.truth import nine_sym_function, parity_function


def random_mig(seed: int, num_pis: int = 5, num_gates: int = 14) -> Mig:
    rng = random.Random(seed)
    mig = Mig(f"cv{seed}")
    signals = [mig.add_pi() for _ in range(num_pis)] + [0]
    for _ in range(num_gates):
        picks = []
        while len(picks) < 3:
            s = signals[rng.randrange(len(signals))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        signals.append(mig.make_maj(*picks))
    for _ in range(3):
        s = signals[rng.randrange(len(signals) // 2, len(signals))]
        if rng.random() < 0.3:
            s = signal_not(s)
        mig.add_po(s)
    return mig


def mutate_once(mig: Mig, rng: random.Random) -> None:
    """One random structural mutation drawn from the optimizer moves."""
    nodes = mig.reachable_nodes()
    if not nodes:
        return
    node = nodes[rng.randrange(len(nodes))]
    move = rng.randrange(6)
    levels = {n: lvl for n, lvl in level_stats(mig).node_levels.items()}
    if move == 0:
        apply_inverter_propagation(mig, node)
    elif move == 1:
        apply_distributivity_rl(mig, node, force=rng.random() < 0.5)
    elif move == 2:
        apply_distributivity_lr(mig, node, levels)
    elif move == 3:
        apply_associativity(mig, node, levels, allow_neutral=True)
    elif move == 4:
        # Redirect a PO to a random live signal (exercises EVENT_PO).
        index = rng.randrange(mig.num_pos)
        target = nodes[rng.randrange(len(nodes))]
        signal = (target << 1) | (1 if rng.random() < 0.5 else 0)
        mig.set_po(index, signal)
    else:
        # Substitute a node by one of its children (function-changing,
        # but the view must track *any* legal mutation).
        child = mig.children(node)[rng.randrange(3)]
        if signal_node(child) != node:
            mig.substitute(node, child)


class TestViewConsistency:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_mutations_stay_consistent(self, seed, mutation_seed):
        mig = random_mig(seed)
        view = CostView(mig)
        rng = random.Random(mutation_seed)
        for _ in range(12):
            mutate_once(mig, rng)
            view.assert_consistent()

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_every_quantity_matches_level_stats(self, seed):
        mig = random_mig(seed)
        view = CostView(mig)
        rng = random.Random(seed ^ 0xBEEF)
        for _ in range(6):
            mutate_once(mig, rng)
        reference = level_stats(mig)
        assert view.size_depth() == (reference.size, reference.depth)
        assert view.levels() == reference.node_levels
        stats = view.stats()
        assert stats.nodes_per_level == reference.nodes_per_level
        assert (
            stats.complements_per_level == reference.complements_per_level
        )
        assert stats.po_complements == reference.po_complements
        for realization in (Realization.MAJ, Realization.IMP):
            costs = view.costs(realization)
            assert costs.rrams == reference.rram_count(realization)
            assert costs.steps == reference.step_count(realization)

    def test_copy_from_forces_full_recompute(self):
        mig = random_mig(3)
        view = CostView(mig)
        view.stats()
        full_before = view.counters.full_recomputes
        mig.copy_from(mig.clone())
        view.stats()
        assert view.counters.full_recomputes == full_before + 1
        view.assert_consistent()

    def test_generation_cache_hit_counted(self):
        mig = random_mig(4)
        view = CostView(mig)
        view.stats()
        hits = view.counters.cache_hits
        view.stats()
        assert view.counters.cache_hits > hits


class TestPredictFlipGroup:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_prediction_matches_measurement(self, seed, flip_seed):
        mig = random_mig(seed)
        view = CostView(mig)
        rng = random.Random(flip_seed)
        nodes = mig.reachable_nodes()
        if not nodes:
            return
        flips = [
            nodes[rng.randrange(len(nodes))]
            for _ in range(rng.randrange(1, 5))
        ]
        flips = list(dict.fromkeys(flips))
        for realization in (Realization.MAJ, Realization.IMP):
            predicted = view.predict_flip_group(flips, realization)
            trial = copy.deepcopy(mig)
            trial._track_events = False
            for node in flips:
                if trial.is_gate(node):
                    apply_inverter_propagation(trial, node)
            stats = level_stats(trial)
            measured = (
                stats.step_count(realization),
                stats.rram_count(realization),
            )
            # None means "collision possible, measure instead" — always
            # allowed; a returned value must be exact.
            if predicted is not None:
                assert tuple(predicted) == measured

    def test_prediction_skips_nothing_on_fresh_nodes(self):
        # A chain graph has no strash collisions on flip, so prediction
        # must return a value (not bail to the measured path).
        mig = Mig("chain")
        a, b, c = (mig.add_pi() for _ in range(3))
        g1 = mig.make_maj(a, b, c)
        g2 = mig.make_maj(g1, signal_not(a), b)
        mig.add_po(g2)
        view = CostView(mig)
        predicted = view.predict_flip_group(
            [signal_node(g2)], Realization.MAJ
        )
        assert predicted is not None


def reference_clear_complemented_levels(mig, realization, max_rounds=16):
    """The pre-CostView implementation: clone/apply/measure/rollback for
    every candidate.  Kept here as the oracle for the incremental one."""
    changed_any = False
    for _round in range(max_rounds):
        stats = level_stats(mig)
        before = (
            stats.step_count(realization),
            stats.rram_count(realization),
        )
        candidates = sorted(
            (count, lvl)
            for lvl, count in enumerate(stats.complements_per_level)
            if count > 0
        )
        if stats.po_complements > 0:
            candidates.append((stats.po_complements, -1))
        improved = False
        node_level_map = dict(stats.node_levels)
        for _count, level in candidates:
            if (
                level != -1
                and _level_clear_plan(mig, level, node_level_map) is None
            ):
                continue
            snapshot = mig.clone()
            if level == -1:
                ok = _try_clear_po_level(mig)
            else:
                ok = _try_clear_level(mig, level, node_level_map)
            if not ok:
                mig.copy_from(snapshot)
                continue
            new_stats = level_stats(mig)
            after = (
                new_stats.step_count(realization),
                new_stats.rram_count(realization),
            )
            if after < before:
                improved = True
                changed_any = True
                break
            mig.copy_from(snapshot)
        if not improved:
            break
    return changed_any


def graph_state(mig):
    return (mig._children, mig._is_pi, mig._pis, mig._pos, mig._strash)


class TestClearLevelsIdentity:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_view_path_is_bit_identical_to_reference(self, seed):
        """The predicted/fixpoint-compacted path must reproduce the
        reference implementation's result *including node ids* (the
        stale level-map semantics make behavior id-sensitive)."""
        for realization in (Realization.MAJ, Realization.IMP):
            reference = random_mig(seed, num_pis=4, num_gates=18)
            incremental = reference.clone()
            reference.copy_from(incremental)  # identical starting ids
            assert graph_state(reference) == graph_state(incremental)
            changed_ref = reference_clear_complemented_levels(
                reference, realization
            )
            view = CostView(incremental)
            changed_inc = clear_complemented_levels(
                incremental, realization, view=view
            )
            assert changed_ref == changed_inc
            assert graph_state(reference) == graph_state(incremental)


class TestOptimizersWithView:
    @pytest.mark.parametrize(
        "tables_fn",
        [lambda: parity_function(6), nine_sym_function],
        ids=["parity6", "nine_sym"],
    )
    def test_optimize_steps_preserves_function(self, tables_fn):
        mig = mig_from_truth_tables(tables_fn(), "t")
        guard = EquivalenceGuard(mig)
        result = optimize_steps(mig, Realization.MAJ, 6)
        guard.verify_or_raise()
        assert result.profile is not None
        assert result.profile["full_recomputes"] >= 1

    def test_optimize_rram_preserves_function_and_counts(self):
        mig = mig_from_truth_tables(nine_sym_function(), "t")
        guard = EquivalenceGuard(mig)
        result = optimize_rram(mig, Realization.IMP, 6)
        guard.verify_or_raise()
        profile = result.profile
        assert profile is not None
        assert profile["moves_tried"] >= profile["moves_accepted"]
        assert set(profile) >= {
            "full_recomputes",
            "delta_updates",
            "cache_hits",
            "events_replayed",
            "moves_tried",
            "moves_accepted",
            "predicted_skips",
        }
