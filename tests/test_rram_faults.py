"""The opt-in fault model and the detector-sensitivity machinery.

Covers the device-level semantics of each fault class, trace capture,
fault enumeration, and the detected / missed / latent classification —
including the ISSUE's headline property: on the small-circuit corpus
every fault class is detected at >= 95% of exercised sites.
"""

import pytest

from repro.benchmarks import fuzz_corpus_names, load_netlist
from repro.mig import Realization, mig_from_netlist
from repro.rram import (
    FAULT_CLASSES,
    FaultCampaignStats,
    FaultModel,
    FaultVerdict,
    RramDevice,
    clean_references,
    compile_mig,
    enumerate_fault_models,
    probe_fault,
    run_program,
    run_program_traced,
    verification_vectors,
)


def _compiled(name, realization=Realization.MAJ):
    mig = mig_from_netlist(load_netlist(name))
    return compile_mig(mig, realization)


class TestDeviceFaults:
    def test_stuck_device_ignores_writes(self):
        dev = RramDevice(state=False, stuck_at=True)
        assert dev.state is True
        dev.apply(True, True)  # any switching attempt
        assert dev.state is True

    def test_healthy_device_still_switches(self):
        dev = RramDevice(state=True)
        dev.apply(False, True)  # VCLEAR pulse: P=0, Q=1 resets
        assert dev.state is False

    def test_fault_free_array_unchanged_by_model_none(self):
        report = _compiled("xor5_d")
        vectors = verification_vectors(5)
        for vector in vectors[:4]:
            baseline = run_program(report.program, list(vector))
            again, trace = run_program_traced(
                report.program, list(vector), fault_model=None
            )
            assert again == baseline
            assert trace  # tracing itself must not perturb execution


class TestFaultModel:
    def test_constructors_and_labels(self):
        assert "dev3" in FaultModel.stuck_at(3, True).label
        assert "s2" in FaultModel.dropped_write(2, 1).label
        assert "sense" in FaultModel.sense_flip(4, 0).label

    def test_enumerate_covers_program(self):
        report = _compiled("rd53f1")
        program = report.program
        for fault_class in FAULT_CLASSES:
            models = enumerate_fault_models(program, fault_class)
            assert models, fault_class
            assert all(m.label for m in models)
        stuck = enumerate_fault_models(program, "stuck-set")
        assert len(stuck) == program.num_devices

    def test_enumerate_rejects_unknown_class(self):
        report = _compiled("rd53f1")
        with pytest.raises(ValueError):
            enumerate_fault_models(report.program, "cosmic-ray")

    def test_stuck_fault_changes_some_execution(self):
        report = _compiled("xor5_d")
        vectors = verification_vectors(5)
        diverged = False
        for model in enumerate_fault_models(report.program, "stuck-set"):
            for vector in vectors:
                clean = run_program(report.program, list(vector))
                faulty = run_program(
                    report.program, list(vector), fault_model=model
                )
                if faulty != clean:
                    diverged = True
                    break
            if diverged:
                break
        assert diverged


class TestVerdicts:
    def test_probe_detects_an_output_corrupting_fault(self):
        report = _compiled("xor5_d")
        vectors = verification_vectors(5)
        references = clean_references(report.program, vectors)
        verdicts = [
            probe_fault(report, model, vectors, references)
            for model in enumerate_fault_models(report.program, "stuck-set")
        ]
        assert any(v.detected for v in verdicts)
        for verdict in verdicts:
            assert isinstance(verdict, FaultVerdict)
            # detected / missed / latent are mutually exclusive.
            assert (
                int(verdict.detected)
                + int(verdict.missed)
                + int(verdict.latent)
                == 1
            )

    def test_campaign_stats_merge_and_rate(self):
        first = FaultCampaignStats("stuck-set", detected=8, missed=1, latent=3)
        second = FaultCampaignStats("stuck-set", detected=2, missed=0, latent=1)
        first.merge(second)
        assert first.sites == 15
        assert first.detection_rate == pytest.approx(10 / 11)

    def test_no_exercised_sites_counts_as_full_detection(self):
        stats = FaultCampaignStats("sense-flip", detected=0, missed=0, latent=4)
        assert stats.detection_rate == 1.0


class TestDetectionFloor:
    """The acceptance property: >= 95% per class on the small corpus."""

    @pytest.mark.parametrize("fault_class", FAULT_CLASSES)
    def test_corpus_detection_rate(self, fault_class):
        import random

        rng = random.Random(0xFA17)
        totals = FaultCampaignStats(fault_class)
        for index, name in enumerate(fuzz_corpus_names()[:8]):
            realization = (
                Realization.MAJ if index % 2 == 0 else Realization.IMP
            )
            report = _compiled(name, realization)
            vectors = verification_vectors(
                len(load_netlist(name).inputs)
            )
            references = clean_references(report.program, vectors)
            models = enumerate_fault_models(report.program, fault_class)
            if len(models) > 30:
                # Unbiased site sample, the way the harness sweeps —
                # a prefix slice would over-weight early-step faults,
                # which downstream majority gates mask most often.
                models = rng.sample(models, 30)
            for model in models:
                verdict = probe_fault(report, model, vectors, references)
                if verdict.detected:
                    totals.detected += 1
                elif verdict.missed:
                    totals.missed += 1
                else:
                    totals.latent += 1
        assert totals.detected + totals.missed > 0
        assert totals.detection_rate >= 0.95, (
            f"{fault_class}: {totals.detected} detected, "
            f"{totals.missed} missed, {totals.latent} latent"
        )


class TestTraceCapture:
    def test_trace_records_per_step_reads(self):
        report = _compiled("rd53f1")
        vector = list(verification_vectors(5)[0])
        outputs, trace = run_program_traced(report.program, vector)
        assert outputs == run_program(report.program, vector)
        assert len(trace) == len(report.program.steps)

    def test_sense_flip_changes_trace(self):
        report = _compiled("rd53f1")
        vector = list(verification_vectors(5)[1])
        _, clean = run_program_traced(report.program, vector)
        models = enumerate_fault_models(report.program, "sense-flip")
        flipped_any = False
        for model in models[:20]:
            _, faulty = run_program_traced(
                report.program, vector, fault_model=model
            )
            if faulty != clean:
                flipped_any = True
                break
        assert flipped_any
