"""Delta-debugging shrinker and repro-bundle serialization."""

import json

import pytest

from repro.fuzz import case_netlist, shrink_netlist, write_bundle
from repro.io import read_blif
from repro.network import GateType, Netlist, netlists_equivalent


def _wide_netlist():
    """Many independent outputs; only one of them matters."""
    netlist = Netlist("wide")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    netlist.add_gate("g_and", GateType.AND, [a, b])
    netlist.add_gate("g_or", GateType.OR, [b, c])
    netlist.add_gate("g_xor", GateType.XOR, [a, c])
    netlist.add_gate("g_deep", GateType.NAND, ["g_and", "g_xor"])
    for name in ("g_and", "g_or", "g_xor", "g_deep"):
        netlist.set_output(name)
    return netlist


class TestShrink:
    def test_shrinks_to_single_relevant_output(self):
        netlist = _wide_netlist()

        def fails(candidate):
            # "Bug" fires whenever the circuit still contains an XOR.
            return any(
                g.gate_type is GateType.XOR for g in candidate.gates()
            )

        shrunk = shrink_netlist(netlist, fails, max_seconds=10)
        assert fails(shrunk)
        assert len(shrunk.outputs) < len(netlist.outputs)
        assert shrunk.num_gates < netlist.num_gates

    def test_result_always_satisfies_predicate(self):
        netlist = case_netlist("gates", 3141)

        def fails(candidate):
            return len(candidate.inputs) >= 2

        shrunk = shrink_netlist(netlist, fails, max_seconds=5)
        assert fails(shrunk)
        shrunk.validate()

    def test_predicate_exception_treated_as_pass(self):
        netlist = _wide_netlist()
        calls = []

        def flaky(candidate):
            calls.append(candidate.num_gates)
            if candidate.num_gates < 4:
                raise RuntimeError("different crash")
            return True

        shrunk = shrink_netlist(netlist, flaky, max_seconds=5)
        # Candidates that crashed the predicate were never accepted.
        assert shrunk.num_gates >= 4

    def test_respects_time_budget(self):
        import time

        netlist = case_netlist("mig", 777)

        def slow(candidate):
            time.sleep(0.02)
            return True

        start = time.perf_counter()
        shrink_netlist(netlist, slow, max_seconds=0.3)
        # One in-flight predicate call may overshoot; a runaway loop
        # would take many times the budget.
        assert time.perf_counter() - start < 5.0


class TestBundles:
    def test_bundle_contents_roundtrip(self, tmp_path):
        netlist = case_netlist("gates", 2718)
        info = {
            "failure": {"check": "flow-area", "detail": "planted"},
            "seed": 2718,
        }
        bundle_dir = write_bundle(str(tmp_path), "case0001", netlist, info)
        payload = json.loads(
            (tmp_path / "case0001" / "repro.json").read_text()
        )
        assert payload["failure"]["check"] == "flow-area"
        assert payload["seed"] == 2718
        assert payload["circuit"]["inputs"] == len(netlist.inputs)
        assert payload["files"]["blif"] == "repro.blif"
        replayed = read_blif(str(tmp_path / "case0001" / "repro.blif"))
        assert netlists_equivalent(netlist, replayed)

    def test_bundle_json_is_deterministic(self, tmp_path):
        netlist = case_netlist("table", 11)
        info = {"failure": {"check": "plim-exec", "detail": "x"}}
        write_bundle(str(tmp_path / "a"), "case", netlist, info)
        write_bundle(str(tmp_path / "b"), "case", netlist, info)
        assert (
            (tmp_path / "a" / "case" / "repro.json").read_text()
            == (tmp_path / "b" / "case" / "repro.json").read_text()
        )
