"""Tests for the energy/endurance accounting."""

import pytest

from repro.mig import Mig, Realization, mig_from_truth_tables
from repro.rram import (
    compile_mig,
    compile_plim,
    measure_energy,
    verification_vectors,
)
from repro.truth import count_ones_function


@pytest.fixture(scope="module")
def rd53_reports():
    mig = mig_from_truth_tables(count_ones_function(5, 3), "rd53")
    vectors = verification_vectors(5)
    return {
        "imp": measure_energy(compile_mig(mig, Realization.IMP).program, vectors),
        "maj": measure_energy(compile_mig(mig, Realization.MAJ).program, vectors),
        "plim": measure_energy(compile_plim(mig).program, vectors),
    }


def test_counts_positive(rd53_reports):
    for report in rd53_reports.values():
        assert report.vectors == 32
        assert report.pulses > 0
        assert report.switches > 0
        assert report.energy_pj > 0


def test_switches_bounded_by_pulses(rd53_reports):
    for report in rd53_reports.values():
        assert report.switches <= report.pulses
        assert 0 < report.switch_efficiency <= 1
        assert report.max_device_switches <= report.max_device_pulses


def test_maj_realization_uses_fewer_pulses(rd53_reports):
    """3 steps/gate vs 10 steps/gate shows directly in pulses."""
    assert rd53_reports["maj"].pulses < rd53_reports["imp"].pulses
    assert rd53_reports["maj"].energy_pj < rd53_reports["imp"].energy_pj


def test_per_vector_metrics(rd53_reports):
    report = rd53_reports["maj"]
    assert report.pulses_per_vector == pytest.approx(report.pulses / 32)
    assert report.switches_per_vector == pytest.approx(report.switches / 32)


def test_energy_weights():
    mig = Mig()
    a, b, c = (mig.add_pi() for _ in range(3))
    mig.add_po(mig.make_maj(a, b, c))
    program = compile_mig(mig, Realization.MAJ).program
    vectors = verification_vectors(3)
    cheap = measure_energy(program, vectors, switch_energy_pj=0.0,
                           pulse_energy_pj=1.0)
    assert cheap.energy_pj == pytest.approx(cheap.pulses)
    switchy = measure_energy(program, vectors, switch_energy_pj=1.0,
                             pulse_energy_pj=0.0)
    assert switchy.energy_pj == pytest.approx(switchy.switches)


def test_hold_pulses_do_not_switch():
    """An IMP with p=1 holds the target: a pulse but never a switch."""
    from repro.rram import Imp, LoadInput, Program, Step

    program = Program(
        name="hold", realization="imp", num_devices=2, num_inputs=2,
        steps=[
            Step([LoadInput(0, 0), LoadInput(1, 1)]),
            Step([Imp(0, 1)]),
        ],
        output_devices={0: 1},
    )
    report = measure_energy(program, [[True, True]])
    # Loads: 2 pulses, up to 1 switch each; the IMP pulse holds.
    assert report.pulses == 3
    assert report.switches <= 2
